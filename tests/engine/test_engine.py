"""Tests for the session-oriented Engine API."""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.session as session_module
from repro.core.lambda_estimation import MonteCarloNullEstimator
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.engine import (
    Engine,
    MemoryArtifactStore,
    RunSpec,
    dataset_fingerprint,
)


@pytest.fixture(scope="module")
def planted_dataset():
    frequencies = {item: 0.08 for item in range(20)}
    planted = [PlantedItemset(items=(0, 1, 2), extra_support=60)]
    return generate_planted_dataset(
        frequencies, num_transactions=400, planted=planted, rng=11, name="planted"
    )


class TestRegistry:
    def test_register_returns_fingerprint(self, planted_dataset):
        engine = Engine()
        handle = engine.register(planted_dataset)
        assert handle == dataset_fingerprint(planted_dataset)
        assert engine.dataset(handle) is planted_dataset
        assert engine.dataset("planted") is planted_dataset

    def test_same_content_registers_once(self, planted_dataset):
        from repro.data.dataset import TransactionDataset

        engine = Engine()
        first = engine.register(planted_dataset)
        clone = TransactionDataset(
            planted_dataset.transactions,
            items=planted_dataset.items,
            name="other-name",
        )
        second = engine.register(clone)
        assert first == second
        assert engine.stats.datasets_registered == 1
        # The originally registered object (and its packed index) is kept.
        assert engine.dataset(second) is planted_dataset
        assert engine.dataset("other-name") is planted_dataset

    def test_unknown_reference_rejected(self):
        engine = Engine()
        with pytest.raises(KeyError):
            engine.dataset("nope")
        with pytest.raises(ValueError):
            engine.run(RunSpec(ks=2))


class TestRunSpec:
    def test_scalars_normalize_to_tuples(self):
        spec = RunSpec(ks=2, alphas=0.05, betas=0.1)
        assert spec.ks == (2,)
        assert spec.alphas == (0.05,)
        assert spec.betas == (0.1,)
        assert spec.num_queries == 1

    def test_grids(self):
        spec = RunSpec(ks=(2, 3), alphas=(0.05, 0.1), betas=(0.05,))
        assert spec.num_queries == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec(ks=0)
        with pytest.raises(ValueError):
            RunSpec(ks=(2, 2))
        with pytest.raises(ValueError):
            RunSpec(ks=2, alphas=1.5)
        with pytest.raises(ValueError):
            RunSpec(ks=2, num_datasets=0)
        with pytest.raises(ValueError):
            RunSpec(ks=2, procedures="3")
        with pytest.raises(ValueError):
            RunSpec(ks=2, null_model="nope")
        with pytest.raises(TypeError):
            RunSpec(ks=2, null_model=object())  # instances are not serializable

    def test_round_trip(self):
        spec = RunSpec(
            ks=(2, 3),
            alphas=(0.05, 0.1),
            betas=0.05,
            num_datasets=42,
            null_model="swap",
            seed=7,
            procedures="both",
            lambda_floor=0.01,
            dataset="abc",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec


class TestSimulationAmortization:
    """The acceptance criterion: one simulation per (dataset, null, Δ, seed, k, ε)."""

    def test_multi_k_plus_regrid_pays_one_simulation_per_k(
        self, planted_dataset, monkeypatch
    ):
        simulation_calls: list[int] = []
        real_find = session_module.find_poisson_threshold

        def counting_find(*args, **kwargs):
            simulation_calls.append(1)
            return real_find(*args, **kwargs)

        monkeypatch.setattr(
            session_module, "find_poisson_threshold", counting_find
        )

        engine = Engine()
        handle = engine.register(planted_dataset)

        # One multi-k run: k=2 and k=3 with the default alpha/beta.
        first = engine.run(
            RunSpec(ks=(2, 3), num_datasets=20, procedures="both", seed=0),
            dataset=handle,
        )
        assert len(first.queries) == 2
        assert len(simulation_calls) == 2  # one per k, nothing else
        assert engine.stats.simulations_run == 2

        # A second query over the same ks at different alpha/beta budgets:
        # the (fingerprint, null, Δ, seed, k, ε) keys are unchanged, so NO
        # new Monte-Carlo simulation may run.
        second = engine.run(
            RunSpec(
                ks=(2, 3),
                alphas=(0.01, 0.1),
                betas=0.1,
                num_datasets=20,
                procedures="both",
                seed=0,
            ),
            dataset=handle,
        )
        assert len(second.queries) == 4
        assert len(simulation_calls) == 2
        assert engine.stats.simulations_run == 2
        assert engine.stats.artifact_cache_hits > 0

        # Thresholds agree across the two runs (same artifact).
        for k in (2, 3):
            assert first.thresholds[k] == second.thresholds[k]

        # Changing the Monte-Carlo budget is a different artifact.
        engine.run(RunSpec(ks=2, num_datasets=25, seed=0), dataset=handle)
        assert len(simulation_calls) == 3

    def test_monte_carlo_collections_also_amortized(
        self, planted_dataset, monkeypatch
    ):
        """Ground truth below the counter: no estimator collection either."""
        collections: list[int] = []
        real_collect = MonteCarloNullEstimator._collect

        def counting_collect(self):
            collections.append(1)
            return real_collect(self)

        monkeypatch.setattr(
            MonteCarloNullEstimator, "_collect", counting_collect
        )

        engine = Engine()
        handle = engine.register(planted_dataset)
        engine.run(RunSpec(ks=2, num_datasets=15, seed=1), dataset=handle)
        after_first = len(collections)
        assert after_first >= 1  # the halving loop may build several
        engine.run(
            RunSpec(ks=2, alphas=0.1, betas=0.1, num_datasets=15, seed=1),
            dataset=handle,
        )
        assert len(collections) == after_first

    def test_observed_mining_pass_amortized_across_the_grid(
        self, planted_dataset, monkeypatch
    ):
        """F_k(s_min) is mined once per (dataset, k, s_min), not per grid cell."""
        import repro.core.procedure1 as procedure1_module
        import repro.core.procedure2 as procedure2_module
        import repro.fim.kitemsets as kitemsets_module

        calls: list[int] = []
        real_mine = kitemsets_module.mine_k_itemsets

        def counting_mine(*args, **kwargs):
            calls.append(1)
            return real_mine(*args, **kwargs)

        # Patch every binding an observed-dataset pass could go through.
        monkeypatch.setattr(kitemsets_module, "mine_k_itemsets", counting_mine)
        monkeypatch.setattr(procedure1_module, "mine_k_itemsets", counting_mine)
        monkeypatch.setattr(procedure2_module, "mine_k_itemsets", counting_mine)

        engine = Engine()
        handle = engine.register(planted_dataset)
        engine.threshold(handle, 2, num_datasets=15, seed=6)  # simulation done
        before = len(calls)
        engine.run(
            RunSpec(
                ks=2,
                alphas=(0.01, 0.05, 0.1),
                betas=(0.05, 0.1),
                num_datasets=15,
                procedures="both",
                seed=6,
            ),
            dataset=handle,
        )
        # One observed-dataset pass serves all 6 grid cells of both procedures.
        assert len(calls) - before == 1


class TestDeterminism:
    def test_same_seed_same_result_regardless_of_engine(self, planted_dataset):
        spec = RunSpec(ks=(2,), num_datasets=20, procedures="both", seed=123)
        first = Engine().run(spec, dataset=planted_dataset)
        second = Engine().run(spec, dataset=planted_dataset)
        assert first == second
        assert first.to_json() == second.to_json()

    def test_query_order_cannot_change_results(self, planted_dataset):
        engine_a = Engine()
        engine_b = Engine()
        kwargs = dict(num_datasets=20, null_model="swap", seed=5)
        p1_a = engine_a.procedure1(planted_dataset, 2, beta=0.05, **kwargs)
        p2_a = engine_a.procedure2(planted_dataset, 2, **kwargs)
        p2_b = engine_b.procedure2(planted_dataset, 2, **kwargs)
        p1_b = engine_b.procedure1(planted_dataset, 2, beta=0.05, **kwargs)
        assert p1_a == p1_b
        assert p2_a == p2_b

    def test_seed_none_is_cached_within_the_session(self, planted_dataset):
        engine = Engine(store=MemoryArtifactStore())
        engine.run(RunSpec(ks=2, num_datasets=15, seed=None), dataset=planted_dataset)
        engine.run(RunSpec(ks=2, num_datasets=15, seed=None), dataset=planted_dataset)
        assert engine.stats.simulations_run == 1


class TestSwapNull:
    def test_swap_run_smoke(self, planted_dataset):
        engine = Engine()
        result = engine.run(
            RunSpec(
                ks=2, num_datasets=20, null_model="swap", procedures="both", seed=2
            ),
            dataset=planted_dataset,
        )
        report = result.queries[0].report
        assert report.procedure1.null_model == "swap"
        assert report.procedure2.null_model == "swap"
        # Swap Procedure 1 p-values are Monte-Carlo empirical: resolution 1/(Δ+1).
        for pvalue in report.procedure1.pvalues.values():
            assert pvalue >= 1.0 / 21.0

    def test_swap_procedure1_reuses_the_threshold_artifact(
        self, planted_dataset, monkeypatch
    ):
        collections: list[int] = []
        real_collect = MonteCarloNullEstimator._collect

        def counting_collect(self):
            collections.append(1)
            return real_collect(self)

        monkeypatch.setattr(MonteCarloNullEstimator, "_collect", counting_collect)
        engine = Engine()
        handle = engine.register(planted_dataset)
        engine.threshold(handle, 2, num_datasets=15, null_model="swap", seed=3)
        after_threshold = len(collections)
        engine.procedure1(handle, 2, num_datasets=15, null_model="swap", seed=3)
        # Procedure 1 must not rebuild the estimator (kind/Δ/support match).
        assert len(collections) == after_threshold


class TestMinerAdapter:
    def test_miner_matches_engine(self, planted_dataset):
        """The facade is a thin adapter: same artifacts, same results."""
        from repro.core.miner import SignificantItemsetMiner

        miner = SignificantItemsetMiner(k=2, num_datasets=20, rng=9).fit(
            planted_dataset
        )
        report = miner.report()
        engine = miner.engine
        assert engine.stats.simulations_run == 1
        direct = engine.procedure2(
            miner._handle, 2, num_datasets=20, seed=miner._seed
        )
        assert direct == report.procedure2

    def test_rng_generator_accepted(self, planted_dataset):
        from repro.core.miner import SignificantItemsetMiner

        generator = np.random.default_rng(4)
        miner = SignificantItemsetMiner(k=2, num_datasets=15, rng=generator)
        miner.fit(planted_dataset)
        assert miner.s_min >= 1

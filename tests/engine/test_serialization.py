"""JSON round-trip tests for the whole result-type family."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.poisson_threshold import PoissonThresholdResult
from repro.core.results import (
    Procedure1Result,
    Procedure2Result,
    Procedure2Step,
    SignificanceReport,
)
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.engine import Engine, RunResult, RunSpec


@pytest.fixture(scope="module")
def planted_dataset():
    frequencies = {item: 0.08 for item in range(18)}
    planted = [PlantedItemset(items=(0, 1, 2), extra_support=55)]
    return generate_planted_dataset(
        frequencies, num_transactions=350, planted=planted, rng=29, name="serdes"
    )


@pytest.fixture(scope="module")
def run_result(planted_dataset) -> RunResult:
    return Engine().run(
        RunSpec(ks=(2,), num_datasets=20, procedures="both", seed=3),
        dataset=planted_dataset,
    )


def roundtrip(result):
    """from_json(to_json) must reproduce the object and its canonical JSON."""
    text = result.to_json()
    rebuilt = type(result).from_json(text)
    assert rebuilt == result
    assert rebuilt.to_json() == text
    return rebuilt


class TestProcedure1Result:
    def test_real_result_roundtrip(self, run_result):
        procedure1 = run_result.queries[0].report.procedure1
        rebuilt = roundtrip(procedure1)
        # Tuple itemset keys survive exactly.
        assert set(rebuilt.candidate_supports) == set(procedure1.candidate_supports)
        for itemset in rebuilt.candidate_supports:
            assert isinstance(itemset, tuple)
        assert rebuilt.pvalues == procedure1.pvalues  # floats bit-exact

    def test_empty_significant(self):
        result = Procedure1Result(
            k=2,
            s_min=3,
            beta=0.05,
            num_hypotheses=100,
            candidate_supports={(1, 2): 5},
            pvalues={(1, 2): 0.9},
            significant={},
            rejection_threshold=0.0,
        )
        roundtrip(result)

    def test_type_tag_checked(self):
        with pytest.raises(ValueError):
            Procedure1Result.from_dict({"type": "Procedure2Result"})


class TestProcedure2Result:
    def test_real_result_roundtrip(self, run_result):
        roundtrip(run_result.queries[0].report.procedure2)

    def test_infinite_s_star_and_empty_significant(self):
        step = Procedure2Step(
            index=0,
            support=5,
            observed_count=0,
            poisson_mean=0.123456789012345,
            pvalue=1.0,
            alpha_i=0.025,
            beta_i=40.0,
            pvalue_ok=False,
            deviation_ok=False,
            rejected=False,
        )
        result = Procedure2Result(
            k=2,
            alpha=0.05,
            beta=0.05,
            s_min=5,
            s_max=10,
            s_star=math.inf,
            steps=(step,),
            significant={},
        )
        rebuilt = roundtrip(result)
        assert math.isinf(float(rebuilt.s_star))
        assert not rebuilt.found_threshold
        # The JSON itself is standard (no bare Infinity literal).
        parsed = json.loads(result.to_json())
        assert parsed["s_star"] == "inf"


class TestSwapResults:
    def test_swap_null_roundtrip(self, planted_dataset):
        result = Engine().run(
            RunSpec(
                ks=2, num_datasets=15, null_model="swap", procedures="both", seed=8
            ),
            dataset=planted_dataset,
        )
        rebuilt = roundtrip(result)
        assert rebuilt.queries[0].report.procedure1.null_model == "swap"
        assert rebuilt.queries[0].report.procedure2.null_model == "swap"


class TestSignificanceReport:
    def test_full_report_roundtrip(self, run_result):
        roundtrip(run_result.queries[0].report)

    def test_report_without_procedure1(self, run_result):
        report = run_result.queries[0].report
        partial = SignificanceReport(
            dataset_name=report.dataset_name,
            k=report.k,
            s_min=report.s_min,
            procedure1=None,
            procedure2=report.procedure2,
        )
        rebuilt = roundtrip(partial)
        assert rebuilt.procedure1 is None


class TestPoissonThresholdResult:
    def test_roundtrip_drops_estimator_only(self, planted_dataset):
        threshold = Engine().threshold(
            planted_dataset, 2, num_datasets=15, seed=4
        )
        rebuilt = PoissonThresholdResult.from_json(threshold.to_json())
        assert rebuilt.estimator is None
        assert rebuilt == threshold.without_estimator()
        assert rebuilt.bound_curve == threshold.bound_curve
        assert rebuilt.to_json() == threshold.to_json()


class TestRunResult:
    def test_full_roundtrip(self, run_result):
        rebuilt = roundtrip(run_result)
        assert rebuilt.spec == run_result.spec
        assert rebuilt.thresholds == run_result.thresholds
        assert rebuilt.reports == run_result.reports

    def test_query_lookup(self, run_result):
        cell = run_result.query(2, 0.05, 0.05)
        assert cell.report.procedure2 is not None
        with pytest.raises(KeyError):
            run_result.query(9, 0.5, 0.5)


class TestCliJsonOutput:
    def test_mine_output_json_parses_and_renders(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import write_fimi

        path = tmp_path / "serdes.dat"
        dataset = generate_planted_dataset(
            {item: 0.1 for item in range(12)},
            num_transactions=250,
            planted=[PlantedItemset(items=(0, 1), extra_support=40)],
            rng=5,
            name="cli-data",
        )
        write_fimi(dataset, path)

        code = main(
            [
                "mine",
                "--input",
                str(path),
                "--k",
                "2",
                "--delta",
                "10",
                "--procedure",
                "both",
                "--output",
                "json",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        parsed = json.loads(text)
        assert parsed["type"] == "RunResult"
        result = RunResult.from_json(text)
        assert result.queries[0].k == 2

        # The stored JSON renders through the report subcommand.
        stored = tmp_path / "result.json"
        stored.write_text(text, encoding="utf-8")
        assert main(["report", "--input", str(stored), "--max-print", "3"]) == 0
        rendered = capsys.readouterr().out
        assert "s_min (Algorithm 1):" in rendered
        assert "Procedure 2: s* =" in rendered
        assert "Procedure 1 (Benjamini-Yekutieli)" in rendered

"""Tests for the artifact stores (memory and on-disk JSON/NPZ)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lambda_estimation import MonteCarloNullEstimator
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.engine import (
    DirectoryArtifactStore,
    Engine,
    MemoryArtifactStore,
    RunSpec,
)


@pytest.fixture(scope="module")
def planted_dataset():
    frequencies = {item: 0.09 for item in range(15)}
    planted = [PlantedItemset(items=(0, 1), extra_support=50)]
    return generate_planted_dataset(
        frequencies, num_transactions=300, planted=planted, rng=13, name="store-data"
    )


SPEC = RunSpec(ks=(2,), num_datasets=15, procedures="both", seed=17)


class TestMemoryStore:
    def test_save_load_keys(self, planted_dataset):
        store = MemoryArtifactStore()
        engine = Engine(store=store)
        engine.run(SPEC, dataset=planted_dataset)
        keys = list(store.keys())
        assert len(keys) == len(store) == 1
        artifact = store.load(keys[0])
        assert artifact is not None
        assert artifact.key == keys[0]
        assert store.load("missing") is None


class TestDirectoryStore:
    def test_disk_resume_skips_the_simulation(self, planted_dataset, tmp_path):
        first_engine = Engine(store=DirectoryArtifactStore(tmp_path))
        first = first_engine.run(SPEC, dataset=planted_dataset)
        assert first_engine.stats.simulations_run == 1
        assert len(list(first_engine.store.keys())) == 1

        # A brand-new process would start exactly like this fresh Engine:
        # same directory, nothing in memory.
        second_engine = Engine(store=DirectoryArtifactStore(tmp_path))
        second = second_engine.run(SPEC, dataset=planted_dataset)
        assert second_engine.stats.simulations_run == 0
        assert second_engine.stats.artifact_cache_hits >= 1

        # The resumed run is bit-identical, including through JSON.
        assert second == first
        assert second.to_json() == first.to_json()

    def test_estimator_round_trip_preserves_queries(
        self, planted_dataset, tmp_path
    ):
        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        handle = engine.register(planted_dataset)
        threshold = engine.threshold(handle, 2, num_datasets=15, seed=17)
        key = next(iter(store.keys()))
        loaded = store.load(key)
        assert loaded is not None
        original = threshold.estimator
        restored = loaded.threshold.estimator
        assert restored.union_size == original.union_size
        assert restored.union_itemsets == original.union_itemsets
        assert restored.max_observed_support == original.max_observed_support
        low = original.mining_support
        high = original.max_observed_support + 1
        for support in range(low, high + 1):
            assert restored.lambda_at(support) == original.lambda_at(support)
            assert restored.chen_stein_estimates(
                support
            ) == original.chen_stein_estimates(support)
        for itemset in original.union_itemsets[:5]:
            assert restored.empirical_pvalue(
                itemset, low
            ) == original.empirical_pvalue(itemset, low)
        # Threshold value fields round-trip exactly too.
        assert loaded.threshold.without_estimator() == threshold.without_estimator()

    def test_state_dict_from_state_without_store(self, small_model, rng):
        estimator = MonteCarloNullEstimator(
            small_model, 2, num_datasets=10, mining_support=1, rng=rng
        )
        state = estimator.state_dict()
        rebuilt = MonteCarloNullEstimator.from_state(state)
        assert rebuilt.union_itemsets == estimator.union_itemsets
        np.testing.assert_array_equal(rebuilt._profiles, estimator._profiles)
        assert rebuilt.lambda_at(2) == estimator.lambda_at(2)
        # Without a model, the original null kind is still advertised.
        assert getattr(rebuilt, "kind") == "bernoulli"

    def test_wrong_key_and_missing_files_return_none(self, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        assert store.load("never-saved") is None

    def test_corrupt_files_read_as_cache_miss(self, planted_dataset, tmp_path):
        """A torn write must trigger re-simulation, not a poisoned store."""
        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        engine.run(SPEC, dataset=planted_dataset)
        key = next(iter(store.keys()))
        meta_path, array_path = store._paths(key)

        # Truncated JSON metadata (killed mid-write).
        original_meta = meta_path.read_text(encoding="utf-8")
        meta_path.write_text(original_meta[: len(original_meta) // 2])
        assert store.load(key) is None
        recovering = Engine(store=store)
        recovering.run(SPEC, dataset=planted_dataset)
        assert recovering.stats.simulations_run == 1  # re-simulated + re-saved
        assert store.load(key) is not None

        # Corrupt NPZ payload.
        array_path.write_bytes(b"not a zip archive")
        assert store.load(key) is None

    def test_saving_stripped_threshold_rejected(self, planted_dataset, tmp_path):
        from repro.engine.store import NullArtifact

        engine = Engine()
        threshold = engine.threshold(planted_dataset, 2, num_datasets=10, seed=1)
        store = DirectoryArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("key", NullArtifact("key", threshold.without_estimator()))


class TestArtifactVersioning:
    """Old artifacts must read as cache misses, never be mis-read."""

    def test_state_dict_records_version_and_spent_delta(self, small_model, rng):
        estimator = MonteCarloNullEstimator(
            small_model, 2, num_datasets=10, mining_support=1, rng=rng
        )
        state = estimator.state_dict()
        assert state["version"] == 2
        assert state["delta_requested"] == 10
        assert state["delta_spent"] == 10
        estimator.extend(6)
        grown = estimator.state_dict()
        assert grown["delta_requested"] == 10
        assert grown["delta_spent"] == 16
        assert grown["num_datasets"] == 16

    def test_from_state_rejects_other_versions(self, small_model, rng):
        estimator = MonteCarloNullEstimator(
            small_model, 2, num_datasets=10, mining_support=1, rng=rng
        )
        state = estimator.state_dict()
        versionless = {
            key: value for key, value in state.items() if key != "version"
        }
        with pytest.raises(ValueError, match="state version"):
            MonteCarloNullEstimator.from_state(versionless)
        with pytest.raises(ValueError, match="state version"):
            MonteCarloNullEstimator.from_state({**state, "version": 99})

    def test_old_format_artifact_reads_as_cache_miss(
        self, planted_dataset, tmp_path
    ):
        """A v1 on-disk artifact (pre delta-tracking) triggers re-simulation."""
        import json

        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        engine.run(SPEC, dataset=planted_dataset)
        key = next(iter(store.keys()))
        meta_path, _ = store._paths(key)

        # Rewrite the metadata as the v1 format wrote it: format tag 1, no
        # version / delta fields in the estimator state.
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["format"] = 1
        for field in ("version", "delta_requested", "delta_spent"):
            meta["estimator"].pop(field, None)
        meta_path.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
        assert store.load(key) is None
        assert list(store.keys()) == []  # not enumerated either

        recovering = Engine(store=store)
        recovering.run(SPEC, dataset=planted_dataset)
        assert recovering.stats.simulations_run == 1
        assert store.load(key) is not None

    def test_stale_estimator_state_inside_current_format_is_a_miss(
        self, planted_dataset, tmp_path
    ):
        """Format tag current but estimator state from another build: miss."""
        import json

        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        engine.run(SPEC, dataset=planted_dataset)
        key = next(iter(store.keys()))
        meta_path, _ = store._paths(key)
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["estimator"]["version"] = 1
        meta_path.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
        assert store.load(key) is None

    def test_swap_artifacts_record_and_isolate_the_walk_version(
        self, planted_dataset, tmp_path, monkeypatch
    ):
        """Each swap walk owns its artifacts; switching walks is a cache miss.

        The packed and python walks draw different random streams over the
        same margin class, so an artifact simulated under one walk must never
        be replayed as the other's: the walk version is baked into the
        artifact key and recorded in the stored estimator state.
        """
        import json

        from repro.data.swap import WALK_ENV_VAR

        swap_spec = RunSpec(
            ks=(2,), num_datasets=12, procedures="2", null_model="swap", seed=17
        )
        monkeypatch.setenv(WALK_ENV_VAR, "packed")
        store = DirectoryArtifactStore(tmp_path)
        first = Engine(store=store)
        first.run(swap_spec, dataset=planted_dataset)
        assert first.stats.simulations_run == 1
        key = next(iter(store.keys()))
        assert "walk=packed-v1" in key
        meta_path, _ = store._paths(key)
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        assert meta["estimator"]["walk_version"] == "packed-v1"

        # Same walk, fresh process: resumes from disk without simulating.
        resumed = Engine(store=DirectoryArtifactStore(tmp_path))
        resumed.run(swap_spec, dataset=planted_dataset)
        assert resumed.stats.simulations_run == 0

        # Walk switched: different stream, must be a miss and re-simulate.
        monkeypatch.setenv(WALK_ENV_VAR, "python")
        switched = Engine(store=DirectoryArtifactStore(tmp_path))
        switched.run(swap_spec, dataset=planted_dataset)
        assert switched.stats.simulations_run == 1
        keys = sorted(switched.store.keys())
        assert len(keys) == 2
        assert any("walk=python-v1" in stored_key for stored_key in keys)

    def test_tampered_walk_version_reads_as_cache_miss(
        self, planted_dataset, tmp_path, monkeypatch
    ):
        """State claiming another walk's stream than its key must not load."""
        import json

        from repro.data.swap import WALK_ENV_VAR

        monkeypatch.setenv(WALK_ENV_VAR, "packed")
        swap_spec = RunSpec(
            ks=(2,), num_datasets=12, procedures="2", null_model="swap", seed=17
        )
        store = DirectoryArtifactStore(tmp_path)
        Engine(store=store).run(swap_spec, dataset=planted_dataset)
        key = next(iter(store.keys()))
        assert store.load(key) is not None
        meta_path, _ = store._paths(key)
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["estimator"]["walk_version"] = "python-v1"
        meta_path.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
        assert store.load(key) is None

    def test_adaptive_artifact_round_trips_spent_delta(
        self, planted_dataset, tmp_path
    ):
        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        threshold = engine.threshold(
            planted_dataset, 2, num_datasets=8, seed=17, delta_max=32
        )
        assert threshold.delta_spent is not None
        resumed = Engine(store=DirectoryArtifactStore(tmp_path))
        loaded = resumed.threshold(
            planted_dataset, 2, num_datasets=8, seed=17, delta_max=32
        )
        assert resumed.stats.simulations_run == 0
        assert loaded.delta_spent == threshold.delta_spent
        assert loaded.estimator.num_datasets == threshold.spent_num_datasets
        assert (
            loaded.without_estimator().to_json()
            == threshold.without_estimator().to_json()
        )


class TestLockFileHygiene:
    """Sidecar ``.lock`` files must not accumulate without bound."""

    def _artifact(self, dataset, key="k"):
        from repro.core.null_models import BernoulliNull
        from repro.core.poisson_threshold import find_poisson_threshold
        from repro.engine.store import NullArtifact

        threshold = find_poisson_threshold(
            BernoulliNull.from_dataset(dataset), 2, num_datasets=4, rng=0
        )
        return NullArtifact(key=key, threshold=threshold)

    def test_single_flight_leaves_no_lock_files(self, planted_dataset, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        for index in range(5):
            key = f"key-{index}"
            store.single_flight(key, lambda k=key: self._artifact(planted_dataset, k))
        assert len(list(tmp_path.glob("*.json"))) == 5
        assert list(tmp_path.glob("*.lock")) == []

    def test_save_cleans_its_own_lock(self, planted_dataset, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        store.save("k", self._artifact(planted_dataset))
        assert list(tmp_path.glob("*.lock")) == []

    def test_degraded_miss_keeps_the_lock_until_persisted(
        self, planted_dataset, tmp_path
    ):
        # A flight that declines to persist (degraded result) leaves the
        # lock file in place: the key is still a miss, so the file still
        # guards future flights.
        store = DirectoryArtifactStore(tmp_path)
        store.single_flight(
            "k",
            lambda: self._artifact(planted_dataset),
            persist=lambda artifact: False,
        )
        assert len(list(tmp_path.glob("*.lock"))) == 1
        # Once the artifact lands, the next flight cleans the sidecar up.
        store.single_flight("k", lambda: self._artifact(planted_dataset))
        assert list(tmp_path.glob("*.lock")) == []

    def test_cleanup_stale_locks_policy(self, planted_dataset, tmp_path):
        import os
        import time

        store = DirectoryArtifactStore(tmp_path)
        # (1) a lock whose artifact exists (crash between save and cleanup).
        store.save("persisted", self._artifact(planted_dataset, "persisted"))
        backed_path = store._paths("persisted")[0].with_suffix(".lock")
        backed_path.touch()
        # (2) an old orphan (crashed mid-simulation long ago).
        old_orphan = store._paths("old-orphan")[0].with_suffix(".lock")
        old_orphan.touch()
        stale = time.time() - 7200
        os.utime(old_orphan, (stale, stale))
        # (3) a young orphan (a miss may be in flight right now): kept.
        young_orphan = store._paths("young-orphan")[0].with_suffix(".lock")
        young_orphan.touch()

        removed = store.cleanup_stale_locks(max_age=3600.0)
        assert removed == 2
        assert not backed_path.exists()
        assert not old_orphan.exists()
        assert young_orphan.exists()
        # Idempotent: nothing left to reclaim.
        assert store.cleanup_stale_locks(max_age=3600.0) == 0

    def test_cleanup_skips_locks_held_by_a_live_flight(
        self, planted_dataset, tmp_path
    ):
        import os
        import threading
        import time

        store = DirectoryArtifactStore(tmp_path)
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=30.0)
            return self._artifact(planted_dataset, "held")

        flyer = threading.Thread(
            target=lambda: store.single_flight("held", compute), daemon=True
        )
        flyer.start()
        assert entered.wait(timeout=30.0)
        lock_path = store._paths("held")[0].with_suffix(".lock")
        assert lock_path.exists()
        # Make it look ancient: age alone must not defeat the held flock.
        stale = time.time() - 7200
        os.utime(lock_path, (stale, stale))
        # Another *thread* holds the flock via a different fd, so the
        # non-blocking probe fails and the file survives.
        assert store.cleanup_stale_locks(max_age=3600.0) == 0
        assert lock_path.exists()
        release.set()
        flyer.join(timeout=30.0)
        # The flight persisted and cleaned up after itself.
        assert not lock_path.exists()

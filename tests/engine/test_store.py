"""Tests for the artifact stores (memory and on-disk JSON/NPZ)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lambda_estimation import MonteCarloNullEstimator
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.engine import (
    DirectoryArtifactStore,
    Engine,
    MemoryArtifactStore,
    RunSpec,
)


@pytest.fixture(scope="module")
def planted_dataset():
    frequencies = {item: 0.09 for item in range(15)}
    planted = [PlantedItemset(items=(0, 1), extra_support=50)]
    return generate_planted_dataset(
        frequencies, num_transactions=300, planted=planted, rng=13, name="store-data"
    )


SPEC = RunSpec(ks=(2,), num_datasets=15, procedures="both", seed=17)


class TestMemoryStore:
    def test_save_load_keys(self, planted_dataset):
        store = MemoryArtifactStore()
        engine = Engine(store=store)
        engine.run(SPEC, dataset=planted_dataset)
        keys = list(store.keys())
        assert len(keys) == len(store) == 1
        artifact = store.load(keys[0])
        assert artifact is not None
        assert artifact.key == keys[0]
        assert store.load("missing") is None


class TestDirectoryStore:
    def test_disk_resume_skips_the_simulation(self, planted_dataset, tmp_path):
        first_engine = Engine(store=DirectoryArtifactStore(tmp_path))
        first = first_engine.run(SPEC, dataset=planted_dataset)
        assert first_engine.stats.simulations_run == 1
        assert len(list(first_engine.store.keys())) == 1

        # A brand-new process would start exactly like this fresh Engine:
        # same directory, nothing in memory.
        second_engine = Engine(store=DirectoryArtifactStore(tmp_path))
        second = second_engine.run(SPEC, dataset=planted_dataset)
        assert second_engine.stats.simulations_run == 0
        assert second_engine.stats.artifact_cache_hits >= 1

        # The resumed run is bit-identical, including through JSON.
        assert second == first
        assert second.to_json() == first.to_json()

    def test_estimator_round_trip_preserves_queries(
        self, planted_dataset, tmp_path
    ):
        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        handle = engine.register(planted_dataset)
        threshold = engine.threshold(handle, 2, num_datasets=15, seed=17)
        key = next(iter(store.keys()))
        loaded = store.load(key)
        assert loaded is not None
        original = threshold.estimator
        restored = loaded.threshold.estimator
        assert restored.union_size == original.union_size
        assert restored.union_itemsets == original.union_itemsets
        assert restored.max_observed_support == original.max_observed_support
        low = original.mining_support
        high = original.max_observed_support + 1
        for support in range(low, high + 1):
            assert restored.lambda_at(support) == original.lambda_at(support)
            assert restored.chen_stein_estimates(
                support
            ) == original.chen_stein_estimates(support)
        for itemset in original.union_itemsets[:5]:
            assert restored.empirical_pvalue(
                itemset, low
            ) == original.empirical_pvalue(itemset, low)
        # Threshold value fields round-trip exactly too.
        assert loaded.threshold.without_estimator() == threshold.without_estimator()

    def test_state_dict_from_state_without_store(self, small_model, rng):
        estimator = MonteCarloNullEstimator(
            small_model, 2, num_datasets=10, mining_support=1, rng=rng
        )
        state = estimator.state_dict()
        rebuilt = MonteCarloNullEstimator.from_state(state)
        assert rebuilt.union_itemsets == estimator.union_itemsets
        np.testing.assert_array_equal(rebuilt._profiles, estimator._profiles)
        assert rebuilt.lambda_at(2) == estimator.lambda_at(2)
        # Without a model, the original null kind is still advertised.
        assert getattr(rebuilt, "kind") == "bernoulli"

    def test_wrong_key_and_missing_files_return_none(self, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        assert store.load("never-saved") is None

    def test_corrupt_files_read_as_cache_miss(self, planted_dataset, tmp_path):
        """A torn write must trigger re-simulation, not a poisoned store."""
        store = DirectoryArtifactStore(tmp_path)
        engine = Engine(store=store)
        engine.run(SPEC, dataset=planted_dataset)
        key = next(iter(store.keys()))
        meta_path, array_path = store._paths(key)

        # Truncated JSON metadata (killed mid-write).
        original_meta = meta_path.read_text(encoding="utf-8")
        meta_path.write_text(original_meta[: len(original_meta) // 2])
        assert store.load(key) is None
        recovering = Engine(store=store)
        recovering.run(SPEC, dataset=planted_dataset)
        assert recovering.stats.simulations_run == 1  # re-simulated + re-saved
        assert store.load(key) is not None

        # Corrupt NPZ payload.
        array_path.write_bytes(b"not a zip archive")
        assert store.load(key) is None

    def test_saving_stripped_threshold_rejected(self, planted_dataset, tmp_path):
        from repro.engine.store import NullArtifact

        engine = Engine()
        threshold = engine.threshold(planted_dataset, 2, num_datasets=10, seed=1)
        store = DirectoryArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("key", NullArtifact("key", threshold.without_estimator()))

"""Unit tests for the experiment configuration and reporting helpers."""

from __future__ import annotations

import math

import pytest

from repro.data.benchmarks import BENCHMARK_NAMES, benchmark_spec
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentTable, format_table, format_value


class TestExperimentConfig:
    def test_defaults_cover_all_benchmarks(self):
        config = ExperimentConfig()
        assert config.datasets == BENCHMARK_NAMES
        assert config.itemset_sizes == (2, 3, 4)

    def test_presets(self):
        quick = ExperimentConfig.quick()
        paper = ExperimentConfig.paper()
        assert quick.num_datasets < paper.num_datasets
        assert quick.num_trials < paper.num_trials
        assert paper.num_datasets == 1000
        assert paper.num_trials == 100

    def test_scale_for_uses_spec_default(self):
        config = ExperimentConfig(scale_multiplier=0.5)
        spec = benchmark_spec("bms1")
        assert config.scale_for("bms1") == pytest.approx(spec.default_scale * 0.5)

    def test_seed_for_is_deterministic_and_distinct(self):
        config = ExperimentConfig(seed=3)
        assert config.seed_for("bms1", 2, 0) == config.seed_for("bms1", 2, 0)
        assert config.seed_for("bms1", 2, 0) != config.seed_for("bms1", 3, 0)
        assert config.seed_for("bms1", 2, 0) != config.seed_for("retail", 2, 0)
        assert config.seed_for("bms1", 2, 0) != ExperimentConfig(seed=4).seed_for(
            "bms1", 2, 0
        )

    def test_validation(self):
        with pytest.raises(KeyError):
            ExperimentConfig(datasets=("nope",))
        with pytest.raises(ValueError):
            ExperimentConfig(itemset_sizes=())
        with pytest.raises(ValueError):
            ExperimentConfig(itemset_sizes=(0,))
        with pytest.raises(ValueError):
            ExperimentConfig(num_datasets=0)
        with pytest.raises(ValueError):
            ExperimentConfig(scale_multiplier=0.0)


class TestFormatting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(math.inf) == "inf"
        assert format_value(0.0) == "0"
        assert format_value(0.25) == "0.25"
        assert format_value(1.23e-05) == "1.23e-05"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"

    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_experiment_table_round_trip(self):
        table = ExperimentTable(
            name="demo", title="Demo", headers=["dataset", "value"]
        )
        table.add_row(dataset="x", value=1)
        table.add_row(dataset="y", value=2)
        assert table.column("value") == [1, 2]
        rendered = table.to_text()
        assert rendered.startswith("Demo")
        assert "dataset" in rendered
        assert str(table) == rendered

    def test_missing_cells_render_as_dash(self):
        table = ExperimentTable(name="demo", title="Demo", headers=["a", "b"])
        table.add_row(a=1)
        assert "-" in table.to_text()

"""Integration tests for the experiment drivers (tiny configurations).

These tests run every table driver end to end on aggressively scaled-down
configurations: one or two datasets, small Monte-Carlo budgets, few trials.
They check structure and the paper's qualitative invariants, not absolute
values (the benchmark harness under ``benchmarks/`` runs the fuller setting).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import TABLE_RUNNERS, run_all, run_selected
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


TINY = ExperimentConfig(
    datasets=("bms1", "retail"),
    itemset_sizes=(2,),
    num_datasets=10,
    num_trials=2,
    scale_multiplier=0.25,
    seed=0,
)


class TestTable1:
    def test_rows_and_reference(self):
        table = run_table1(TINY)
        assert len(table.rows) == 2
        assert table.paper_reference == PAPER_TABLE1
        for row in table.rows:
            assert row["t"] > 0
            assert 0.0 < row["f_max"] <= 1.0
            assert row["f_min"] <= row["f_max"]
            assert row["m"] > 0

    def test_fmax_matches_paper_order_of_magnitude(self):
        table = run_table1(TINY)
        by_name = {row["dataset"]: row for row in table.rows}
        paper = {row["dataset"]: row for row in PAPER_TABLE1}
        for name, row in by_name.items():
            assert row["f_max"] == pytest.approx(paper[name]["f_max"], rel=0.3)


class TestTable2:
    def test_structure_and_positivity(self):
        table = run_table2(TINY)
        assert len(table.rows) == 2
        for row in table.rows:
            assert row["k=2"] >= 1


class TestTable3:
    def test_correlated_dataset_yields_finite_threshold(self):
        table = run_table3(TINY)
        by_dataset = {(row["dataset"], row["k"]): row for row in table.rows}
        bms1 = by_dataset[("bms1", 2)]
        assert not math.isinf(float(bms1["s_star"]))
        assert bms1["Q"] > 0
        assert bms1["s_star"] >= bms1["s_min"]
        # Retail-like data is near random: no (or almost no) discoveries at k=2.
        retail = by_dataset[("retail", 2)]
        assert math.isinf(float(retail["s_star"])) or retail["Q"] <= 2


class TestTable4:
    def test_random_data_rarely_produces_thresholds(self):
        table = run_table4(TINY)
        for row in table.rows:
            assert 0 <= row["k=2"] <= TINY.num_trials
            # Random analogues should essentially never yield a threshold.
            assert row["k=2"] <= 1


class TestTable5:
    def test_ratio_consistency(self):
        table = run_table5(TINY)
        for row in table.rows:
            if row["R"]:
                assert row["r"] == pytest.approx(row["Q"] / row["R"])
            else:
                assert row["r"] is None
        by_dataset = {row["dataset"]: row for row in table.rows}
        # On the strongly correlated dataset Procedure 2 is at least roughly
        # as effective as Procedure 1 (the paper's headline comparison).
        bms1 = by_dataset["bms1"]
        if bms1["R"]:
            assert bms1["r"] >= 0.9


class TestRunner:
    def test_run_selected_and_all(self):
        tiny = ExperimentConfig(
            datasets=("bms1",),
            itemset_sizes=(2,),
            num_datasets=8,
            num_trials=1,
            scale_multiplier=0.2,
            seed=1,
        )
        results = run_selected(["table1"], tiny)
        assert set(results) == {"table1"}
        assert set(TABLE_RUNNERS) == {"table1", "table2", "table3", "table4", "table5"}
        everything = run_all(tiny)
        assert set(everything) == set(TABLE_RUNNERS)

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            run_selected(["table9"], TINY)

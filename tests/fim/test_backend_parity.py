"""Seeded randomized parity suite across the counting backends.

The contract of the packed-bitmap backend (:mod:`repro.fim.bitmap`) and the
sparse CSC backend (:mod:`repro.fim.sparse`) is *bit-identical* mining
results: for every miner and every dataset shape, the ``numpy``, ``sparse``
and ``python`` backends must return exactly the same itemset -> support
dictionaries.  This suite exercises that contract across the shapes that
stress the packing (empty datasets, a single item, dense data, and
transaction counts crossing the 64- and 128-bit word boundaries), plus the
distributional parity of :meth:`RandomDatasetModel.sample_packed` against
:meth:`RandomDatasetModel.sample`.  Sparse-backend tests skip cleanly on
scipy-free hosts.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

import repro.fim.bitmap as bitmap_module
from repro.data.dataset import TransactionDataset
from repro.data.random_model import RandomDatasetModel
from repro.fim.apriori import apriori
from repro.fim.bitmap import (
    BACKEND_ENV_VAR,
    PackedIndex,
    mine_k_itemsets_packed,
    popcount_rows,
    popcount_words,
    resolve_backend,
    words_for,
)
from repro.fim.counting import VerticalIndex
from repro.fim.eclat import eclat
from repro.fim.kitemsets import count_k_itemsets_at_thresholds, mine_k_itemsets
from repro.fim.sparse import HAS_SCIPY, SparseIndex

requires_scipy = pytest.mark.skipif(
    not HAS_SCIPY, reason="scipy not installed (sparse backend unavailable)"
)


def _seed(label: str) -> int:
    """Stable per-label seed (hash() is randomized per process)."""
    return zlib.crc32(label.encode())


def random_dataset(
    seed: int, num_transactions: int, num_items: int, density: float
) -> TransactionDataset:
    rng = np.random.default_rng(seed)
    transactions = [
        list(np.flatnonzero(rng.random(num_items) < density))
        for _ in range(num_transactions)
    ]
    return TransactionDataset(transactions)


#: (label, t, n, density) — shapes chosen to cross the uint64 word
#: boundaries (t > 64, t > 128) and to cover the empty/degenerate cases.
SHAPES = [
    ("empty", 0, 0, 0.0),
    ("no-occurrences", 5, 4, 0.0),
    ("single-item", 10, 1, 0.6),
    ("dense", 40, 10, 0.5),
    ("word-boundary-64", 100, 12, 0.3),
    ("word-boundary-128", 200, 15, 0.2),
    ("sparse-wide", 300, 40, 0.05),
]


@pytest.mark.parametrize("label,t,n,density", SHAPES, ids=[s[0] for s in SHAPES])
class TestMiningParity:
    def test_mine_k_itemsets_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        for k in (1, 2, 3):
            for min_support in (1, 2, 5):
                python = mine_k_itemsets(data, k, min_support, backend="python")
                numpy_ = mine_k_itemsets(data, k, min_support, backend="numpy")
                assert python == numpy_

    def test_packed_index_input_matches(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        packed = data.packed()
        assert isinstance(packed, PackedIndex)
        assert mine_k_itemsets(packed, 2, 2) == mine_k_itemsets(
            data, 2, 2, backend="python"
        )
        assert mine_k_itemsets_packed(packed, 2, 2) == mine_k_itemsets(
            data, 2, 2, backend="python"
        )

    def test_eclat_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        for max_size in (None, 3):
            assert eclat(data, 2, max_size, backend="python") == eclat(
                data, 2, max_size, backend="numpy"
            )

    def test_apriori_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        assert apriori(data, 2, 3, backend="python") == apriori(
            data, 2, 3, backend="numpy"
        )

    def test_threshold_curve_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        thresholds = [1, 2, 4, 8]
        assert count_k_itemsets_at_thresholds(
            data, 2, thresholds, backend="python"
        ) == count_k_itemsets_at_thresholds(data, 2, thresholds, backend="numpy")

    def test_packed_supports_match_dataset(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        packed = data.packed()
        assert packed.item_supports() == data.item_supports
        assert packed.num_transactions == data.num_transactions
        for itemset in [(), (0,), (0, 1), (0, 1, 2), (999,)]:
            assert packed.support(itemset) == data.support(itemset)


class TestRandomizedSweep:
    """Many small random datasets, both backends, exact equality."""

    def test_seeded_sweep(self):
        rng = np.random.default_rng(2026)
        for _ in range(25):
            t = int(rng.integers(0, 260))
            n = int(rng.integers(1, 20))
            density = float(rng.uniform(0.0, 0.6))
            data = random_dataset(int(rng.integers(2**32)), t, n, density)
            k = int(rng.integers(1, 4))
            min_support = int(rng.integers(1, 6))
            assert mine_k_itemsets(data, k, min_support, backend="python") == (
                mine_k_itemsets(data, k, min_support, backend="numpy")
            )

    def test_vertical_index_to_packed_round_trip(self):
        data = random_dataset(7, 130, 9, 0.3)
        index = VerticalIndex(data)
        packed = index.to_packed()
        assert packed.item_supports() == index.item_supports()
        assert mine_k_itemsets(index, 2, 2, backend="numpy") == mine_k_itemsets(
            index, 2, 2, backend="python"
        )


@requires_scipy
@pytest.mark.parametrize("label,t,n,density", SHAPES, ids=[s[0] for s in SHAPES])
class TestSparseMiningParity:
    """The scipy CSC backend must be bit-identical to the other two."""

    def test_mine_k_itemsets_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        for k in (1, 2, 3):
            for min_support in (1, 2, 5):
                python = mine_k_itemsets(data, k, min_support, backend="python")
                sparse = mine_k_itemsets(data, k, min_support, backend="sparse")
                assert python == sparse

    def test_sparse_index_input_matches(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        sparse = data.sparse()
        assert isinstance(sparse, SparseIndex)
        assert mine_k_itemsets(sparse, 2, 2) == mine_k_itemsets(
            data, 2, 2, backend="python"
        )

    def test_eclat_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        for max_size in (None, 3):
            assert eclat(data, 2, max_size, backend="python") == eclat(
                data, 2, max_size, backend="sparse"
            )

    def test_apriori_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        assert apriori(data, 2, 3, backend="python") == apriori(
            data, 2, 3, backend="sparse"
        )

    def test_threshold_curve_identical(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        thresholds = [1, 2, 4, 8]
        assert count_k_itemsets_at_thresholds(
            data, 2, thresholds, backend="python"
        ) == count_k_itemsets_at_thresholds(data, 2, thresholds, backend="sparse")

    def test_sparse_supports_match_dataset(self, label, t, n, density):
        data = random_dataset(_seed(label), t, n, density)
        sparse = data.sparse()
        assert sparse.item_supports() == data.item_supports
        assert sparse.num_transactions == data.num_transactions
        for itemset in [(), (0,), (0, 1), (0, 1, 2), (999,)]:
            assert sparse.support(itemset) == data.support(itemset)


@requires_scipy
class TestSparseConversions:
    def test_vertical_index_to_sparse_round_trip(self):
        data = random_dataset(7, 130, 9, 0.3)
        index = VerticalIndex(data)
        sparse = index.to_sparse()
        assert sparse.item_supports() == index.item_supports()
        assert mine_k_itemsets(index, 2, 2, backend="sparse") == mine_k_itemsets(
            index, 2, 2, backend="python"
        )

    def test_randomized_sweep(self):
        rng = np.random.default_rng(2027)
        for _ in range(15):
            t = int(rng.integers(0, 260))
            n = int(rng.integers(1, 20))
            density = float(rng.uniform(0.0, 0.4))
            data = random_dataset(int(rng.integers(2**32)), t, n, density)
            k = int(rng.integers(1, 4))
            min_support = int(rng.integers(1, 6))
            assert mine_k_itemsets(data, k, min_support, backend="sparse") == (
                mine_k_itemsets(data, k, min_support, backend="numpy")
            )


class TestDuplicateItemsRegression:
    """Duplicate items within a transaction must not inflate any support.

    Real FIMI files contain duplicated tokens; canonicalisation (sort +
    dedupe) happens at :class:`TransactionDataset` construction, so every
    backend counts each item at most once per transaction.
    """

    DUPLICATED = [[3, 1, 1, 2], [2, 2, 2, 3], [1, 3, 3], [1, 1], [3, 2, 3]]
    CLEAN = [[1, 2, 3], [2, 3], [1, 3], [1], [2, 3]]

    def backends(self):
        return ("python", "numpy") + (("sparse",) if HAS_SCIPY else ())

    def test_construction_canonicalizes(self):
        data = TransactionDataset(self.DUPLICATED)
        assert data.transactions == TransactionDataset(self.CLEAN).transactions

    def test_supports_identical_across_backends(self):
        duplicated = TransactionDataset(self.DUPLICATED)
        clean = TransactionDataset(self.CLEAN)
        expected = {(1,): 3, (2,): 3, (3,): 4}
        assert mine_k_itemsets(clean, 1, 1, backend="python") == expected
        for backend in self.backends():
            for k in (1, 2, 3):
                assert mine_k_itemsets(duplicated, k, 1, backend=backend) == (
                    mine_k_itemsets(clean, k, 1, backend="python")
                )

    def test_pair_supports_not_inflated(self):
        # {2, 3} occurs in three transactions; the duplicated tokens in
        # "2 2 2 3" and "3 2 3" must not push it higher on any backend.
        duplicated = TransactionDataset(self.DUPLICATED)
        for backend in self.backends():
            pairs = mine_k_itemsets(duplicated, 2, 1, backend=backend)
            assert pairs[(2, 3)] == 3


class TestPopcountFallback:
    """The byte-LUT popcount lane (NumPy < 2.0 hosts) must count exactly.

    Forced via monkeypatch so the lane is exercised even on NumPy >= 2.0
    hosts, on rows wide enough (> 255 set bits) that an accumulator in the
    table's own uint8 dtype would wrap.
    """

    def _force_fallback(self, monkeypatch):
        monkeypatch.setattr(bitmap_module, "_HAS_BITWISE_COUNT", False)

    def test_popcount_rows_wide_all_ones(self, monkeypatch):
        self._force_fallback(monkeypatch)
        # 8 words of all-ones = 512 set bits per row: a uint8 accumulator
        # would wrap at 255, int64 accumulation counts exactly.
        words = np.full((3, 8), np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        assert popcount_rows(words).tolist() == [512, 512, 512]
        assert popcount_rows(words).dtype == np.int64

    def test_popcount_rows_matches_python_bit_count(self, monkeypatch):
        self._force_fallback(monkeypatch)
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**64, size=(7, 9), dtype=np.uint64)
        expected = [sum(int(w).bit_count() for w in row) for row in words]
        assert popcount_rows(words).tolist() == expected

    def test_popcount_words_matches_python_bit_count(self, monkeypatch):
        self._force_fallback(monkeypatch)
        rng = np.random.default_rng(6)
        words = rng.integers(0, 2**64, size=(4, 3), dtype=np.uint64)
        expected = [[int(w).bit_count() for w in row] for row in words]
        assert popcount_words(words).tolist() == expected

    def test_mining_parity_under_fallback(self, monkeypatch):
        self._force_fallback(monkeypatch)
        # > 256 transactions so supports can exceed a uint8's range per row.
        data = random_dataset(99, 600, 8, 0.7)
        assert max(data.item_supports.values()) > 255
        assert mine_k_itemsets(data, 2, 2, backend="numpy") == mine_k_itemsets(
            data, 2, 2, backend="python"
        )


class TestBackendSelection:
    def test_resolve_backend_precedence(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == "numpy"
        assert resolve_backend("python") == "python"
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend() == "python"
        # The explicit argument wins over the environment.
        assert resolve_backend("numpy") == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert resolve_backend() == "numpy"

    def test_resolve_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    @requires_scipy
    def test_resolve_backend_sparse(self, monkeypatch):
        assert resolve_backend("sparse") == "sparse"
        monkeypatch.setenv(BACKEND_ENV_VAR, "sparse")
        assert resolve_backend() == "sparse"

    def test_resolve_backend_sparse_without_scipy(self, monkeypatch):
        """Selection fails with a clean, actionable error when scipy is gone."""
        import repro.fim.sparse as sparse_module

        monkeypatch.setattr(sparse_module, "_sparse", None)
        with pytest.raises(ValueError, match="requires scipy"):
            resolve_backend("sparse")

    def test_env_var_steers_mining(self, monkeypatch, tiny_dataset):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        python = mine_k_itemsets(tiny_dataset, 2, 1)
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        numpy_ = mine_k_itemsets(tiny_dataset, 2, 1)
        assert python == numpy_


class TestPackedPrimitives:
    def test_words_for(self):
        assert [words_for(t) for t in (0, 1, 64, 65, 128, 129)] == [0, 1, 1, 2, 2, 3]
        with pytest.raises(ValueError):
            words_for(-1)

    def test_popcount_rows_against_python(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**64, size=(6, 5), dtype=np.uint64)
        expected = [sum(int(w).bit_count() for w in row) for row in words]
        assert popcount_rows(words).tolist() == expected

    def test_from_tidsets_matches_from_dataset(self):
        data = random_dataset(11, 150, 6, 0.3)
        tidsets = {
            item: [tid for tid, txn in enumerate(data.transactions) if item in txn]
            for item in data.items
        }
        packed = PackedIndex.from_tidsets(tidsets, data.num_transactions)
        assert packed.item_supports() == data.item_supports
        assert np.array_equal(packed.rows, data.packed().rows)

    def test_from_tidsets_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PackedIndex.from_tidsets({1: [5]}, 3)


class TestSamplePackedStatistics:
    """sample_packed() must match sample() distributionally."""

    NUM_SAMPLES = 40

    def test_mean_supports_agree(self, small_model):
        rng_packed = np.random.default_rng(17)
        rng_lists = np.random.default_rng(18)
        packed_means = np.zeros(small_model.num_items)
        list_means = np.zeros(small_model.num_items)
        items = small_model.items
        for _ in range(self.NUM_SAMPLES):
            packed = small_model.sample_packed(rng_packed)
            supports = packed.item_supports()
            packed_means += [supports[item] for item in items]
            sample = small_model.sample(rng_lists)
            list_means += [sample.item_support(item) for item in items]
        packed_means /= self.NUM_SAMPLES
        list_means /= self.NUM_SAMPLES
        t = small_model.num_transactions
        for position, item in enumerate(items):
            frequency = small_model.frequency(item)
            expected = t * frequency
            # Standard error of the mean support over NUM_SAMPLES draws.
            sd = np.sqrt(t * frequency * (1.0 - frequency))
            tolerance = 4.0 * sd / np.sqrt(self.NUM_SAMPLES) + 1e-9
            assert abs(packed_means[position] - expected) < tolerance
            assert abs(list_means[position] - expected) < tolerance

    def test_reproducible_and_shaped(self, small_model):
        first = small_model.sample_packed(rng=5)
        second = small_model.sample_packed(rng=5)
        assert np.array_equal(first.rows, second.rows)
        assert first.items == small_model.items
        assert first.num_transactions == small_model.num_transactions

    def test_degenerate_frequencies(self):
        model = RandomDatasetModel({1: 0.0, 2: 1.0}, 70)
        packed = model.sample_packed(rng=0)
        assert packed.item_support(1) == 0
        assert packed.item_support(2) == 70

    def test_zero_transactions(self):
        model = RandomDatasetModel({1: 0.5}, 0)
        packed = model.sample_packed(rng=0)
        assert packed.num_transactions == 0
        assert packed.item_supports() == {1: 0}


class TestEstimatorBackends:
    def test_backend_parity_is_statistical_not_bitwise(self, small_model):
        from repro.core.lambda_estimation import MonteCarloNullEstimator

        numpy_est = MonteCarloNullEstimator(
            small_model, 2, num_datasets=60, mining_support=3, rng=1, backend="numpy"
        )
        python_est = MonteCarloNullEstimator(
            small_model, 2, num_datasets=60, mining_support=3, rng=1, backend="python"
        )
        # Same estimand, independent streams: the λ estimates must agree
        # within Monte-Carlo noise.
        assert numpy_est.lambda_at(4) == pytest.approx(
            python_est.lambda_at(4), rel=0.5, abs=1.5
        )

    def test_n_jobs_parallel_collection_is_deterministic(self, small_model):
        from repro.core.lambda_estimation import MonteCarloNullEstimator

        first = MonteCarloNullEstimator(
            small_model, 2, num_datasets=6, mining_support=3, rng=9, n_jobs=2
        )
        second = MonteCarloNullEstimator(
            small_model, 2, num_datasets=6, mining_support=3, rng=9, n_jobs=2
        )
        assert first.union_itemsets == second.union_itemsets
        assert np.array_equal(first._profiles, second._profiles)

    def test_n_jobs_validation(self, small_model):
        from repro.core.lambda_estimation import MonteCarloNullEstimator

        with pytest.raises(ValueError):
            MonteCarloNullEstimator(
                small_model, 2, num_datasets=2, mining_support=2, n_jobs=0
            )

"""Unit tests for closed and maximal itemset post-processing."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import TransactionDataset
from repro.fim.closed import (
    closed_frequent_itemsets,
    closed_itemsets,
    closure,
    is_closed,
)
from repro.fim.eclat import eclat
from repro.fim.maximal import is_maximal, maximal_itemsets


class TestClosure:
    def test_closure_adds_always_cooccurring_items(self):
        # Item 2 appears in every transaction that contains item 1.
        data = TransactionDataset([[1, 2, 3], [1, 2], [2, 3]])
        assert closure(data, (1,)) == (1, 2)

    def test_closure_of_closed_set_is_itself(self, tiny_dataset):
        assert closure(tiny_dataset, (2,)) == (2,)

    def test_closure_of_unsupported_itemset_is_itself(self, tiny_dataset):
        assert closure(tiny_dataset, (1, 99)) == (1, 99)

    def test_closure_is_idempotent(self, tiny_dataset):
        for itemset in [(1,), (1, 2), (3, 4), (2, 3)]:
            once = closure(tiny_dataset, itemset)
            assert closure(tiny_dataset, once) == once

    def test_is_closed(self):
        data = TransactionDataset([[1, 2, 3], [1, 2], [2, 3]])
        assert not is_closed(data, (1,))
        assert is_closed(data, (1, 2))


class TestClosedFilter:
    def test_closed_itemsets_filter(self):
        data = TransactionDataset([[1, 2, 3], [1, 2], [2, 3]])
        frequent = eclat(data, 1)
        closed = closed_itemsets(frequent)
        # {1} has the same support (2) as its superset {1, 2}: not closed.
        assert (1,) not in closed
        assert (1, 2) in closed
        # {2} has support 3, strictly larger than any superset: closed.
        assert (2,) in closed

    def test_exact_closed_filter_matches_map_based_filter_on_full_lattice(self):
        data = TransactionDataset([[1, 2, 3], [1, 2], [2, 3], [1, 3], [3, 4]])
        frequent = eclat(data, 1)
        assert closed_frequent_itemsets(data, frequent) == closed_itemsets(frequent)

    def test_supports_preserved(self):
        data = TransactionDataset([[1, 2], [1, 2], [2]])
        closed = closed_itemsets(eclat(data, 1))
        assert closed[(1, 2)] == 2
        assert closed[(2,)] == 3

    def test_empty_input(self):
        assert closed_itemsets({}) == {}

    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=6), max_size=5),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_support_value_has_a_closed_representative(self, transactions):
        data = TransactionDataset(transactions)
        frequent = eclat(data, 1)
        if not frequent:
            return
        closed = closed_itemsets(frequent)
        # Closed itemsets form a lossless summary: every frequent itemset's
        # support equals the support of some closed superset.
        for itemset, support in frequent.items():
            assert any(
                set(itemset) <= set(candidate) and closed[candidate] == support
                for candidate in closed
            )


class TestMaximal:
    def test_maximal_filter(self):
        frequent = {(1,): 3, (2,): 3, (1, 2): 2, (3,): 1}
        maximal = maximal_itemsets(frequent)
        assert set(maximal) == {(1, 2), (3,)}

    def test_is_maximal(self):
        collection = [(1, 2), (1, 2, 3)]
        assert not is_maximal((1, 2), collection)
        assert is_maximal((1, 2, 3), collection)

    def test_empty(self):
        assert maximal_itemsets({}) == {}

    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=6), max_size=5),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_maximal_sets_are_antichain_and_cover(self, transactions):
        data = TransactionDataset(transactions)
        frequent = eclat(data, 1)
        maximal = maximal_itemsets(frequent)
        # Antichain: no maximal itemset contains another.
        for first in maximal:
            for second in maximal:
                if first != second:
                    assert not set(first) < set(second)
        # Cover: every frequent itemset is contained in some maximal one.
        for itemset in frequent:
            assert any(set(itemset) <= set(best) for best in maximal)

"""Unit tests for the vertical bitset index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import TransactionDataset
from repro.fim.counting import VerticalIndex, bitset_from_tids, tids_from_bitset


class TestBitsetHelpers:
    def test_round_trip(self):
        tids = [0, 3, 5, 63, 64, 200]
        assert tids_from_bitset(bitset_from_tids(tids)) == sorted(tids)

    def test_empty(self):
        assert bitset_from_tids([]) == 0
        assert tids_from_bitset(0) == []

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            bitset_from_tids([-1])
        with pytest.raises(ValueError):
            tids_from_bitset(-1)

    @given(tids=st.sets(st.integers(min_value=0, max_value=300), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, tids):
        assert tids_from_bitset(bitset_from_tids(tids)) == sorted(tids)

    @given(
        first=st.sets(st.integers(min_value=0, max_value=100), max_size=30),
        second=st.sets(st.integers(min_value=0, max_value=100), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_intersection_matches_set_intersection(self, first, second):
        bits = bitset_from_tids(first) & bitset_from_tids(second)
        assert set(tids_from_bitset(bits)) == first & second


class TestVerticalIndex:
    def test_from_dataset(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert index.num_transactions == 5
        assert index.items == (1, 2, 3, 4)
        assert index.item_support(2) == 4
        assert index.item_supports()[4] == 2

    def test_from_mapping_requires_t(self):
        with pytest.raises(ValueError):
            VerticalIndex({1: 0b101})
        index = VerticalIndex({1: 0b101}, num_transactions=3)
        assert index.item_support(1) == 2

    def test_itemset_support_matches_dataset(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        for itemset in [(1,), (1, 2), (1, 2, 3), (3, 4), (99,)]:
            assert index.support(itemset) == tiny_dataset.support(itemset)

    def test_empty_itemset_covers_everything(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert index.support(()) == 5
        empty_index = VerticalIndex(TransactionDataset([]))
        assert empty_index.support(()) == 0

    def test_unknown_item_short_circuits(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert index.itemset_tidset((1, 99)) == 0

    def test_frequent_items(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert index.frequent_items(3) == [1, 2, 3]
        assert index.frequent_items(5) == []

    def test_restrict(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset).restrict([1, 2])
        assert index.items == (1, 2)
        assert index.num_transactions == 5
        assert 3 not in index

    def test_dunder(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert len(index) == 4
        assert 1 in index
        assert "items=4" in repr(index)

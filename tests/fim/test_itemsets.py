"""Unit tests for itemset utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fim.itemsets import (
    all_subsets,
    canonical,
    generate_candidates,
    itemsets_overlap,
    neighborhood,
    overlapping_pairs,
    subsets_of_size,
)


class TestCanonical:
    def test_sorts_and_deduplicates(self):
        assert canonical([3, 1, 2, 1]) == (1, 2, 3)

    def test_empty(self):
        assert canonical([]) == ()


class TestSubsets:
    def test_subsets_of_size(self):
        assert subsets_of_size((1, 2, 3), 2) == [(1, 2), (1, 3), (2, 3)]
        assert subsets_of_size((1, 2, 3), 0) == [()]
        assert subsets_of_size((1, 2), 3) == []
        assert subsets_of_size((1, 2), -1) == []

    def test_all_subsets(self):
        assert set(all_subsets((1, 2))) == {(1,), (2,), (1, 2)}
        assert () in all_subsets((1, 2), include_empty=True)


class TestCandidateGeneration:
    def test_basic_join(self):
        frequent = [(1, 2), (1, 3), (2, 3)]
        assert generate_candidates(frequent, 3) == [(1, 2, 3)]

    def test_prune_removes_candidates_with_infrequent_subsets(self):
        # (2, 3) is missing, so (1, 2, 3) must be pruned.
        frequent = [(1, 2), (1, 3)]
        assert generate_candidates(frequent, 3) == []

    def test_from_singletons(self):
        assert generate_candidates([(1,), (2,), (3,)], 2) == [(1, 2), (1, 3), (2, 3)]

    def test_empty_input(self):
        assert generate_candidates([], 2) == []

    def test_size_validation(self):
        with pytest.raises(ValueError):
            generate_candidates([(1,)], 1)

    def test_wrong_size_input_rejected(self):
        with pytest.raises(ValueError):
            generate_candidates([(1, 2)], 4)

    @given(
        items=st.sets(st.integers(min_value=0, max_value=10), min_size=2, max_size=6)
    )
    @settings(max_examples=30, deadline=None)
    def test_all_k_subsets_generated_from_complete_lower_level(self, items):
        # When every (k-1)-subset of a ground set is frequent, the candidates
        # of size k are exactly the k-subsets of the ground set.
        from itertools import combinations

        ground = tuple(sorted(items))
        for k in (2, len(ground)):
            lower = [tuple(c) for c in combinations(ground, k - 1)]
            expected = sorted(tuple(c) for c in combinations(ground, k))
            assert sorted(generate_candidates(lower, k)) == expected


class TestNeighborhood:
    def test_overlap(self):
        assert itemsets_overlap((1, 2), (2, 3))
        assert not itemsets_overlap((1, 2), (3, 4))

    def test_neighborhood_includes_self_by_default(self):
        others = [(1, 2), (2, 3), (4, 5)]
        assert neighborhood((1, 2), others) == [(1, 2), (2, 3)]
        assert neighborhood((1, 2), others, include_self=False) == [(2, 3)]

    def test_overlapping_pairs_match_bruteforce(self):
        itemsets = [(1, 2), (2, 3), (3, 4), (5, 6)]
        observed = {frozenset([a, b]) for a, b in overlapping_pairs(itemsets)}
        expected = set()
        for i in range(len(itemsets)):
            for j in range(i + 1, len(itemsets)):
                if set(itemsets[i]) & set(itemsets[j]):
                    expected.add(frozenset([itemsets[i], itemsets[j]]))
        assert observed == expected

    def test_overlapping_pairs_skips_duplicates(self):
        pairs = list(overlapping_pairs([(1, 2), (1, 2), (2, 3)]))
        assert (canonical((1, 2)), canonical((2, 3))) in [
            (canonical(a), canonical(b)) for a, b in pairs
        ] or (canonical((2, 3)), canonical((1, 2))) in [
            (canonical(a), canonical(b)) for a, b in pairs
        ]
        for first, second in pairs:
            assert first != second

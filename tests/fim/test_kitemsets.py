"""Unit tests for fixed-size k-itemset mining."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import TransactionDataset
from repro.fim.counting import VerticalIndex
from repro.fim.kitemsets import (
    count_k_itemsets_at_thresholds,
    mine_k_itemsets,
    support_histogram,
)


def brute_force_k(transactions, k, min_support):
    items = sorted({item for txn in transactions for item in txn})
    result = {}
    for combo in combinations(items, k):
        support = sum(1 for txn in transactions if set(combo) <= set(txn))
        if support >= min_support:
            result[combo] = support
    return result


TOY = [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3, 4], [4], [1, 2, 4]]


class TestMineKItemsets:
    def test_matches_bruteforce(self):
        data = TransactionDataset(TOY)
        for k in (1, 2, 3, 4):
            for min_support in (1, 2, 3):
                assert mine_k_itemsets(data, k, min_support) == brute_force_k(
                    TOY, k, min_support
                )

    def test_k_one_returns_frequent_items(self, tiny_dataset):
        result = mine_k_itemsets(tiny_dataset, 1, 3)
        assert result == {(1,): 3, (2,): 4, (3,): 3}

    def test_only_size_k_itemsets_returned(self, tiny_dataset):
        result = mine_k_itemsets(tiny_dataset, 2, 1)
        assert all(len(itemset) == 2 for itemset in result)

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            mine_k_itemsets(tiny_dataset, 0, 1)
        with pytest.raises(ValueError):
            mine_k_itemsets(tiny_dataset, 2, 0)

    def test_accepts_vertical_index(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert mine_k_itemsets(index, 2, 2) == mine_k_itemsets(tiny_dataset, 2, 2)

    def test_k_larger_than_item_count(self, tiny_dataset):
        assert mine_k_itemsets(tiny_dataset, 10, 1) == {}

    def test_empty_dataset(self, empty_dataset):
        assert mine_k_itemsets(empty_dataset, 2, 1) == {}

    def test_agrees_with_eclat_filtered_by_size(self):
        from repro.fim.eclat import eclat

        data = TransactionDataset(TOY)
        full = eclat(data, 2)
        for k in (1, 2, 3):
            expected = {
                itemset: support for itemset, support in full.items() if len(itemset) == k
            }
            assert mine_k_itemsets(data, k, 2) == expected

    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=7), max_size=5), max_size=15
        ),
        k=st.integers(1, 3),
        min_support=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_property(self, transactions, k, min_support):
        data = TransactionDataset(transactions)
        assert mine_k_itemsets(data, k, min_support) == brute_force_k(
            transactions, k, min_support
        )


class TestCountAtThresholds:
    def test_counts_match_direct_mining(self):
        data = TransactionDataset(TOY)
        counts = count_k_itemsets_at_thresholds(data, 2, [1, 2, 3, 4])
        for s, count in counts.items():
            assert count == len(mine_k_itemsets(data, 2, s))

    def test_counts_are_non_increasing_in_s(self):
        data = TransactionDataset(TOY)
        counts = count_k_itemsets_at_thresholds(data, 2, range(1, 8))
        values = [counts[s] for s in sorted(counts)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_empty_thresholds(self, tiny_dataset):
        assert count_k_itemsets_at_thresholds(tiny_dataset, 2, []) == {}

    def test_base_support_does_not_change_counts(self):
        data = TransactionDataset(TOY)
        a = count_k_itemsets_at_thresholds(data, 2, [3, 4], base_support=1)
        b = count_k_itemsets_at_thresholds(data, 2, [3, 4], base_support=3)
        assert a == b


class TestSupportHistogram:
    def test_histogram(self):
        itemsets = {(1, 2): 3, (1, 3): 3, (2, 3): 5}
        assert support_histogram(itemsets) == {3: 2, 5: 1}

    def test_empty(self):
        assert support_histogram({}) == {}

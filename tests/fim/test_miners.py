"""Tests for the Apriori / Eclat / FP-growth miners, including cross-checks."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import TransactionDataset
from repro.fim.apriori import apriori
from repro.fim.counting import VerticalIndex
from repro.fim.eclat import eclat
from repro.fim.fpgrowth import FPTree, fpgrowth


def brute_force(transactions, min_support, max_size=None):
    """Reference miner: enumerate every subset of every transaction."""
    from collections import Counter

    counts: Counter = Counter()
    items = sorted({item for txn in transactions for item in txn})
    upper = max_size or len(items)
    for size in range(1, upper + 1):
        for combo in combinations(items, size):
            support = sum(1 for txn in transactions if set(combo) <= set(txn))
            if support >= min_support:
                counts[combo] = support
    return dict(counts)


TOY_TRANSACTIONS = [
    [1, 2, 3],
    [1, 2],
    [2, 3],
    [1, 3],
    [1, 2, 3, 4],
    [4],
]


class TestAprioriBasics:
    def test_matches_bruteforce_on_toy_data(self):
        data = TransactionDataset(TOY_TRANSACTIONS)
        assert apriori(data, 2) == brute_force(TOY_TRANSACTIONS, 2)

    def test_min_support_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            apriori(tiny_dataset, 0)

    def test_max_size_limits_output(self, tiny_dataset):
        result = apriori(tiny_dataset, 1, max_size=1)
        assert all(len(itemset) == 1 for itemset in result)

    def test_accepts_vertical_index(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert apriori(index, 2) == apriori(tiny_dataset, 2)

    def test_high_threshold_returns_nothing(self, tiny_dataset):
        assert apriori(tiny_dataset, 100) == {}


class TestEclatBasics:
    def test_matches_bruteforce_on_toy_data(self):
        data = TransactionDataset(TOY_TRANSACTIONS)
        assert eclat(data, 2) == brute_force(TOY_TRANSACTIONS, 2)

    def test_min_support_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            eclat(tiny_dataset, 0)

    def test_max_size(self, tiny_dataset):
        result = eclat(tiny_dataset, 1, max_size=2)
        assert max(len(itemset) for itemset in result) <= 2

    def test_empty_dataset(self, empty_dataset):
        assert eclat(empty_dataset, 1) == {}


class TestFPGrowthBasics:
    def test_matches_bruteforce_on_toy_data(self):
        data = TransactionDataset(TOY_TRANSACTIONS)
        assert fpgrowth(data, 2) == brute_force(TOY_TRANSACTIONS, 2)

    def test_min_support_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            fpgrowth(tiny_dataset, 0)

    def test_max_size(self, tiny_dataset):
        result = fpgrowth(tiny_dataset, 1, max_size=2)
        assert max(len(itemset) for itemset in result) <= 2

    def test_accepts_vertical_index(self, tiny_dataset):
        index = VerticalIndex(tiny_dataset)
        assert fpgrowth(index, 2) == fpgrowth(tiny_dataset, 2)

    def test_empty_dataset(self, empty_dataset):
        assert fpgrowth(empty_dataset, 1) == {}


class TestFPTree:
    def test_single_path_detection(self):
        tree = FPTree([((1, 2, 3), 1), ((1, 2), 1)], min_support=1)
        assert tree.is_single_path()
        chain = tree.single_path_items()
        assert [item for item, _ in chain] == sorted(
            [item for item, _ in chain],
            key=lambda it: (-tree.item_supports[it], it),
        )

    def test_branching_tree_is_not_single_path(self):
        tree = FPTree([((1, 2), 1), ((1, 3), 1), ((2, 3), 1)], min_support=1)
        assert not tree.is_single_path()

    def test_prefix_paths(self):
        tree = FPTree([((1, 2), 2), ((1, 3), 1)], min_support=1)
        paths = tree.prefix_paths(2)
        assert paths == [((1,), 2)]

    def test_num_nodes_compression(self):
        # Two identical transactions share one path.
        tree = FPTree([((1, 2, 3), 1), ((1, 2, 3), 1)], min_support=1)
        assert tree.num_nodes() == 3

    def test_min_support_filters_items(self):
        tree = FPTree([((1, 2), 1), ((1,), 1)], min_support=2)
        assert set(tree.item_supports) == {1}

    def test_invalid_min_support(self):
        with pytest.raises(ValueError):
            FPTree([], min_support=0)


transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=8), max_size=5),
    min_size=0,
    max_size=15,
)


class TestMinersAgreeProperty:
    @given(transactions=transactions_strategy, min_support=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_all_miners_match_bruteforce(self, transactions, min_support):
        data = TransactionDataset(transactions)
        expected = brute_force(transactions, min_support)
        assert apriori(data, min_support) == expected
        assert eclat(data, min_support) == expected
        assert fpgrowth(data, min_support) == expected

    @given(transactions=transactions_strategy)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_min_support(self, transactions):
        data = TransactionDataset(transactions)
        low = eclat(data, 1)
        high = eclat(data, 2)
        assert set(high) <= set(low)
        for itemset, support in high.items():
            assert low[itemset] == support

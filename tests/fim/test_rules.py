"""Unit tests for association-rule generation and rule significance."""

from __future__ import annotations

import pytest

from repro.data.dataset import TransactionDataset
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.fim.eclat import eclat
from repro.fim.rules import (
    AssociationRule,
    generate_rules,
    rule_pvalue,
    significant_rules,
)


@pytest.fixture
def rule_dataset() -> TransactionDataset:
    # Item 1 implies item 2 in 3 of its 4 occurrences.
    return TransactionDataset(
        [
            [1, 2, 3],
            [1, 2],
            [1, 2, 4],
            [1, 3],
            [2, 4],
            [3, 4],
        ],
        name="rules",
    )


class TestGenerateRules:
    def test_confidence_and_lift(self, rule_dataset):
        frequent = eclat(rule_dataset, 2)
        rules = generate_rules(frequent, rule_dataset, min_confidence=0.7)
        by_sides = {(rule.antecedent, rule.consequent): rule for rule in rules}
        rule = by_sides[((1,), (2,))]
        assert rule.support == 3
        assert rule.antecedent_support == 4
        assert rule.confidence == pytest.approx(0.75)
        # f_2 = 4/6, so lift = 0.75 / (4/6) = 1.125.
        assert rule.lift == pytest.approx(1.125)

    def test_min_confidence_filters(self, rule_dataset):
        frequent = eclat(rule_dataset, 2)
        strict = generate_rules(frequent, rule_dataset, min_confidence=0.9)
        loose = generate_rules(frequent, rule_dataset, min_confidence=0.1)
        assert len(strict) <= len(loose)
        assert all(rule.confidence >= 0.9 for rule in strict)

    def test_rules_from_fixed_size_map_count_antecedents_on_the_fly(self, rule_dataset):
        from repro.fim.kitemsets import mine_k_itemsets

        pairs = mine_k_itemsets(rule_dataset, 2, 2)
        rules = generate_rules(pairs, rule_dataset, min_confidence=0.5)
        assert rules, "single-size maps must still produce rules"
        for rule in rules:
            assert rule.antecedent_support == rule_dataset.support(rule.antecedent)

    def test_antecedent_and_consequent_are_disjoint_and_cover_itemset(self, rule_dataset):
        frequent = eclat(rule_dataset, 2)
        for rule in generate_rules(frequent, rule_dataset, min_confidence=0.0):
            assert not set(rule.antecedent) & set(rule.consequent)
            assert rule.items == tuple(sorted(rule.antecedent + rule.consequent))

    def test_sorted_by_confidence(self, rule_dataset):
        frequent = eclat(rule_dataset, 2)
        rules = generate_rules(frequent, rule_dataset, min_confidence=0.0)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_validation_and_degenerate_input(self, rule_dataset):
        with pytest.raises(ValueError):
            generate_rules({}, rule_dataset, min_confidence=1.5)
        assert generate_rules({}, rule_dataset) == []
        assert generate_rules({(1,): 4}, rule_dataset) == []

    def test_str(self, rule_dataset):
        frequent = eclat(rule_dataset, 2)
        rule = generate_rules(frequent, rule_dataset, min_confidence=0.7)[0]
        assert "->" in str(rule)


class TestRuleSignificance:
    def test_planted_rule_is_significant(self):
        frequencies = {item: 0.05 for item in range(30)}
        planted = [PlantedItemset(items=(0, 1), extra_support=80)]
        dataset = generate_planted_dataset(frequencies, 600, planted, rng=3)
        frequent = eclat(dataset, 30, max_size=2)
        rules = generate_rules(frequent, dataset, min_confidence=0.3)
        selected = significant_rules(dataset, rules, beta=0.05)
        selected_sides = {(rule.antecedent, rule.consequent) for rule, _ in selected}
        assert ((0,), (1,)) in selected_sides or ((1,), (0,)) in selected_sides
        for _, pvalue in selected:
            assert 0.0 <= pvalue <= 1.0

    def test_rule_pvalue_matches_binomial_tail(self, rule_dataset):
        from repro.stats.binomial import binomial_sf

        rule = AssociationRule(
            antecedent=(1,),
            consequent=(2,),
            support=3,
            antecedent_support=4,
            confidence=0.75,
            lift=1.125,
        )
        expected = binomial_sf(3, 4, rule_dataset.frequency(2))
        assert rule_pvalue(rule_dataset, rule) == pytest.approx(expected)

    def test_no_rules_no_output(self, rule_dataset):
        assert significant_rules(rule_dataset, [], beta=0.05) == []

    def test_independent_items_produce_no_significant_rules(self):
        frequencies = {item: 0.2 for item in range(10)}
        dataset = generate_planted_dataset(frequencies, 400, rng=9)
        frequent = eclat(dataset, 10, max_size=2)
        rules = generate_rules(frequent, dataset, min_confidence=0.0)
        selected = significant_rules(dataset, rules, beta=0.05)
        assert len(selected) <= max(1, len(rules) // 20)

"""End-to-end integration tests across the whole pipeline.

These tests exercise the complete story the paper tells, on small synthetic
datasets with known ground truth:

* planted correlations are recovered with a small empirical FDR;
* pure-null datasets yield no (or almost no) discoveries;
* Procedure 2 is at least as powerful as Procedure 1;
* the full pipeline is deterministic given seeds;
* the library round-trips through the FIMI on-disk format.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.miner import SignificantItemsetMiner
from repro.core.poisson_threshold import find_poisson_threshold
from repro.core.procedure1 import run_procedure1
from repro.core.procedure2 import run_procedure2
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.data.io import read_fimi, write_fimi
from repro.stats.fdr import evaluate_discoveries


def make_planted(num_items=40, t=800, extra=80, seed=0):
    frequencies = {item: 0.06 for item in range(num_items)}
    planted = [
        PlantedItemset(items=(0, 1, 2, 3), extra_support=extra),
        PlantedItemset(items=(10, 11, 12), extra_support=extra // 2),
    ]
    dataset = generate_planted_dataset(
        frequencies, t, planted, rng=seed, name="planted"
    )
    return dataset, planted


class TestPlantedRecovery:
    @pytest.mark.parametrize("k", [2, 3])
    def test_procedure2_recovers_planted_itemsets_with_low_fdr(self, k):
        dataset, planted = make_planted(seed=1)
        result = run_procedure2(dataset, k, num_datasets=40, rng=2)
        assert result.found_threshold
        confusion = evaluate_discoveries(result.significant, planted, k=k)
        # Everything planted above the threshold is discovered …
        assert confusion.recall >= 0.9
        # … and false discoveries are rare (β = 0.05, allow Monte-Carlo slack).
        assert confusion.false_discovery_proportion <= 0.2

    def test_procedure1_and_2_agree_on_strong_signal(self):
        dataset, planted = make_planted(seed=3)
        threshold = find_poisson_threshold(dataset, 2, num_datasets=40, rng=4)
        proc1 = run_procedure1(dataset, 2, threshold_result=threshold)
        proc2 = run_procedure2(dataset, 2, threshold_result=threshold)
        assert proc2.num_significant >= proc1.num_significant * 0.9
        planted_pairs = {
            pair
            for plant in planted
            for pair in [
                (a, b)
                for i, a in enumerate(plant.items)
                for b in plant.items[i + 1 :]
            ]
        }
        assert planted_pairs <= set(proc2.significant)
        assert planted_pairs <= set(proc1.significant)

    def test_null_dataset_produces_nothing(self):
        frequencies = {item: 0.06 for item in range(40)}
        dataset = generate_planted_dataset(frequencies, 800, rng=9, name="null")
        result = run_procedure2(dataset, 2, num_datasets=40, rng=10)
        assert not result.found_threshold
        proc1 = run_procedure1(dataset, 2, num_datasets=40, rng=11)
        assert proc1.num_significant <= 1


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self):
        dataset, _ = make_planted(seed=5)
        first = SignificantItemsetMiner(k=2, num_datasets=25, rng=6).fit(dataset)
        second = SignificantItemsetMiner(k=2, num_datasets=25, rng=6).fit(dataset)
        assert first.s_min == second.s_min
        assert first.procedure2().s_star == second.procedure2().s_star
        assert first.procedure2().significant == second.procedure2().significant
        assert first.procedure1().significant == second.procedure1().significant


class TestOnDiskRoundTrip:
    def test_pipeline_on_reloaded_fimi_file(self, tmp_path):
        dataset, planted = make_planted(seed=7)
        path = tmp_path / "planted.dat"
        write_fimi(dataset, path)
        # The planted generator can emit genuinely empty transactions, which
        # read_fimi skips by default (blank lines are noise in FIMI files) —
        # a faithful round trip needs the explicit opt-in.
        reloaded = read_fimi(path, keep_empty=True)
        assert reloaded.transactions == dataset.transactions

        original = run_procedure2(dataset, 2, num_datasets=25, rng=8)
        repeated = run_procedure2(reloaded, 2, num_datasets=25, rng=8)
        assert original.s_star == repeated.s_star
        assert original.significant == repeated.significant


class TestFdrControlUnderNull:
    def test_false_threshold_rate_is_low_over_repeated_nulls(self):
        """Mini Table 4: over repeated pure-null datasets, Procedure 2 should
        (almost) never return a finite threshold."""
        frequencies = {item: 0.06 for item in range(30)}
        hits = 0
        trials = 8
        for trial in range(trials):
            dataset = generate_planted_dataset(
                frequencies, 500, rng=100 + trial, name=f"null{trial}"
            )
            result = run_procedure2(
                dataset, 2, num_datasets=25, rng=200 + trial, collect_significant=False
            )
            if result.found_threshold:
                hits += 1
        assert hits <= 1

"""Tests for the Δ-adaptive Monte-Carlo budgets (repro.parallel.adaptive).

The reproducibility contract under test: draws come from per-draw spawned
child generators, so

* :meth:`MonteCarloNullEstimator.extend` produces exactly the matrix a
  fresh, larger estimator would have collected (strict prefix);
* a ``find_poisson_threshold`` run that stops at budget ``Δ_s`` equals a
  fixed run of the same size (``num_datasets = delta_max = Δ_s``);
* a Δ-adaptive Procedure 1 that stops at ``Δ_s`` is bit-identical to the
  fixed-``Δ_s`` run;
* ``delta_max=None`` keeps the pre-adaptive behaviour, draw for draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lambda_estimation import MonteCarloNullEstimator
from repro.core.poisson_threshold import find_poisson_threshold
from repro.core.procedure1 import run_procedure1
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.data.random_model import RandomDatasetModel
from repro.engine import RunSpec
from repro.parallel import (
    clopper_pearson_interval,
    decide_proportion,
    next_budget,
    wilson_interval,
)


@pytest.fixture(scope="module")
def model():
    return RandomDatasetModel(
        {item: 0.2 for item in range(8)}, num_transactions=100, name="adaptive"
    )


@pytest.fixture(scope="module")
def dataset():
    frequencies = {item: 0.12 for item in range(10)}
    planted = [PlantedItemset(items=(0, 1), extra_support=35)]
    return generate_planted_dataset(
        frequencies, num_transactions=150, planted=planted, rng=7, name="adpt-data"
    )


# ----------------------------------------------------------------------
# Interval arithmetic
# ----------------------------------------------------------------------
class TestIntervals:
    def test_wilson_contains_point_estimate(self):
        for count, trials in [(0, 10), (3, 10), (10, 10), (250, 500)]:
            low, high = wilson_interval(count, trials)
            assert 0.0 <= low <= count / trials <= high <= 1.0

    def test_wilson_never_degenerate_at_extremes(self):
        low, high = wilson_interval(0, 50)
        assert high > 0.0
        low, high = wilson_interval(50, 50)
        assert low < 1.0

    def test_wilson_shrinks_with_trials(self):
        narrow = wilson_interval(50, 1000)
        wide = wilson_interval(5, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_clopper_pearson_contains_point_estimate(self):
        for count, trials in [(0, 20), (7, 20), (20, 20), (100, 400)]:
            cp_low, cp_high = clopper_pearson_interval(count, trials)
            assert 0.0 <= cp_low <= count / trials <= cp_high <= 1.0

    def test_clopper_pearson_conservative_in_the_interior(self):
        # The exact interval is at least as wide as Wilson away from the
        # extremes (at 0 and n Wilson's z² correction overshoots instead).
        cp_low, cp_high = clopper_pearson_interval(7, 20)
        w_low, w_high = wilson_interval(7, 20)
        assert cp_high - cp_low >= w_high - w_low

    def test_decide_proportion(self):
        assert decide_proportion(0, 1000, 0.5) == "below"
        assert decide_proportion(1000, 1000, 0.5) == "above"
        assert decide_proportion(5, 10, 0.5) == "uncertain"
        assert (
            decide_proportion(0, 1000, 0.5, method="clopper-pearson") == "below"
        )
        with pytest.raises(ValueError, match="unknown interval method"):
            decide_proportion(1, 10, 0.5, method="jeffreys")

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)

    def test_next_budget_geometric_and_clamped(self):
        assert next_budget(100, 1000) == 200
        assert next_budget(600, 1000) == 1000
        assert next_budget(1000, 1000) == 1000
        assert next_budget(1, 10, growth=1.5) == 2  # always progresses
        with pytest.raises(ValueError):
            next_budget(10, 100, growth=1.0)


# ----------------------------------------------------------------------
# Estimator extension: the strict-prefix property
# ----------------------------------------------------------------------
class TestExtendPrefix:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_extend_matches_fresh_larger_estimator(self, model, backend):
        full = MonteCarloNullEstimator(
            model,
            2,
            num_datasets=30,
            mining_support=2,
            rng=np.random.default_rng(7),
            backend=backend,
        )
        grown = MonteCarloNullEstimator(
            model,
            2,
            num_datasets=10,
            mining_support=2,
            rng=np.random.default_rng(7),
            backend=backend,
        )
        assert grown.extend(20)
        assert grown.num_datasets == 30
        assert grown.union_itemsets == full.union_itemsets
        for itemset in full.union_itemsets:
            np.testing.assert_array_equal(
                grown.support_profile(itemset), full.support_profile(itemset)
            )
        for support in range(2, full.max_observed_support + 2):
            assert grown.lambda_at(support) == full.lambda_at(support)
            assert grown.chen_stein_estimates(
                support
            ) == full.chen_stein_estimates(support)

    def test_extend_in_steps_equals_one_shot(self, model):
        stepped = MonteCarloNullEstimator(
            model, 2, num_datasets=5, mining_support=2, rng=np.random.default_rng(3)
        )
        assert stepped.extend(10)
        assert stepped.extend(15)
        oneshot = MonteCarloNullEstimator(
            model, 2, num_datasets=30, mining_support=2, rng=np.random.default_rng(3)
        )
        np.testing.assert_array_equal(stepped._profiles, oneshot._profiles)
        assert stepped.union_itemsets == oneshot.union_itemsets

    def test_extend_refuses_union_overflow_and_stays_unchanged(self):
        # Rare pairs over a wide universe: the union keeps growing with Δ,
        # so a cap that fits the seed collection is overrun by the extension.
        sparse = RandomDatasetModel(
            {item: 0.1 for item in range(40)}, num_transactions=100, name="sparse"
        )
        seed = MonteCarloNullEstimator(
            sparse, 2, num_datasets=5, mining_support=2, rng=0
        )
        estimator = MonteCarloNullEstimator(
            sparse,
            2,
            num_datasets=5,
            mining_support=2,
            rng=0,
            max_union_size=seed.union_size,
        )
        before_profiles = estimator._profiles.copy()
        before_delta = estimator.num_datasets
        assert not estimator.extend(200)
        np.testing.assert_array_equal(estimator._profiles, before_profiles)
        assert estimator.num_datasets == before_delta

    def test_extend_validation(self, model):
        estimator = MonteCarloNullEstimator(
            model, 2, num_datasets=5, mining_support=2, rng=0
        )
        with pytest.raises(ValueError):
            estimator.extend(0)
        restored = MonteCarloNullEstimator.from_state(estimator.state_dict())
        with pytest.raises(RuntimeError, match="without a model"):
            restored.extend(5)

    def test_interval_point_estimate_matches_chen_stein(self, model):
        estimator = MonteCarloNullEstimator(
            model, 2, num_datasets=40, mining_support=2, rng=1
        )
        for support in range(2, estimator.max_observed_support + 2):
            b1, b2 = estimator.chen_stein_estimates(support)
            estimate, low, high = estimator.chen_stein_interval(support)
            assert estimate == pytest.approx(b1 + b2)
            assert low <= estimate <= high


# ----------------------------------------------------------------------
# Algorithm 1 with adaptive budgets
# ----------------------------------------------------------------------
class TestAdaptiveThreshold:
    def test_fixed_budget_unchanged_by_the_new_parameters(self, model):
        """delta_max=None must stay draw-for-draw the pre-adaptive path."""
        old = find_poisson_threshold(model, 2, num_datasets=25, rng=0)
        new = find_poisson_threshold(
            model, 2, num_datasets=25, rng=0, executor="thread", n_jobs=2
        )
        assert old.s_min == new.s_min
        assert old.bound_curve == new.bound_curve
        np.testing.assert_array_equal(
            old.estimator._profiles, new.estimator._profiles
        )
        assert old.delta_spent is None and new.delta_spent is None
        assert old.spent_num_datasets == 25

    def test_adaptive_spends_between_seed_and_cap(self, model):
        result = find_poisson_threshold(
            model, 2, num_datasets=10, delta_max=80, rng=0
        )
        assert result.delta_spent is not None
        assert 10 <= result.delta_spent <= 80
        assert result.spent_num_datasets == result.delta_spent
        assert result.estimator.num_datasets == result.delta_spent

    def test_stopped_run_equals_capped_run_of_same_size(self, model):
        """The exact replay contract at the Algorithm 1 level.

        A run that stopped at Δ_s must be bit-identical to the same run
        capped there (same Δ₀, ``delta_max=Δ_s``): both navigate the
        halving loop at Δ₀ on the same draws, and the deciding stage sees
        exactly the same Δ_s datasets.
        """
        adaptive = find_poisson_threshold(
            model, 2, num_datasets=10, delta_max=160, rng=5
        )
        spent = adaptive.delta_spent
        capped = find_poisson_threshold(
            model, 2, num_datasets=10, delta_max=spent, rng=5
        )
        assert capped.delta_spent == spent
        assert adaptive.s_min == capped.s_min
        assert adaptive.bound_at_s_min == capped.bound_at_s_min
        assert adaptive.initial_support == capped.initial_support
        assert adaptive.bound_curve == capped.bound_curve
        np.testing.assert_array_equal(
            adaptive.estimator._profiles, capped.estimator._profiles
        )

    def test_delta_max_validation(self, model):
        with pytest.raises(ValueError, match="delta_max"):
            find_poisson_threshold(model, 2, num_datasets=50, delta_max=10)


# ----------------------------------------------------------------------
# Procedure 1 with adaptive empirical p-values
# ----------------------------------------------------------------------
class TestAdaptiveProcedure1:
    def test_stopped_run_bit_identical_to_fixed_run(self, dataset):
        adaptive = run_procedure1(
            dataset,
            2,
            beta=0.2,
            s_min=12,
            num_datasets=10,
            delta_max=160,
            rng=2,
            null_model="swap",
        )
        assert adaptive.delta_spent is not None
        assert 10 <= adaptive.delta_spent <= 160
        fixed = run_procedure1(
            dataset,
            2,
            beta=0.2,
            s_min=12,
            num_datasets=adaptive.delta_spent,
            delta_max=adaptive.delta_spent,
            rng=2,
            null_model="swap",
        )
        assert adaptive == fixed

    def test_bernoulli_path_ignores_delta_max(self, dataset):
        fixed = run_procedure1(dataset, 2, s_min=12, num_datasets=10, rng=2)
        adaptive = run_procedure1(
            dataset, 2, s_min=12, num_datasets=10, delta_max=160, rng=2
        )
        assert adaptive == fixed
        assert adaptive.delta_spent is None

    def test_inherited_estimator_is_not_mutated(self, dataset):
        threshold = find_poisson_threshold(
            dataset, 2, num_datasets=12, rng=3, null_model="swap"
        )
        before = threshold.estimator.num_datasets
        run_procedure1(
            dataset,
            2,
            threshold_result=threshold,
            num_datasets=12,
            delta_max=48,
            rng=4,
            null_model="swap",
        )
        assert threshold.estimator.num_datasets == before


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
class TestSpec:
    def test_delta_max_round_trips(self):
        spec = RunSpec(ks=(2,), num_datasets=16, delta_max=128)
        assert RunSpec.from_json(spec.to_json()) == spec
        legacy = RunSpec(ks=(2,), num_datasets=16)
        assert legacy.delta_max is None
        assert RunSpec.from_json(legacy.to_json()) == legacy

    def test_delta_max_validation(self):
        with pytest.raises(ValueError, match="delta_max"):
            RunSpec(num_datasets=100, delta_max=50)


class TestClopperPearsonScipyFree:
    def test_fallback_matches_scipy(self, monkeypatch):
        pytest.importorskip("scipy")
        cases = [(0, 20), (7, 20), (20, 20), (100, 400), (1, 1000)]
        reference = {case: clopper_pearson_interval(*case) for case in cases}
        # Poison the import so the function takes the betainc_inv lane.
        import sys

        monkeypatch.setitem(sys.modules, "scipy", None)
        for case, (low, high) in reference.items():
            got_low, got_high = clopper_pearson_interval(*case)
            assert got_low == pytest.approx(low, abs=1e-9)
            assert got_high == pytest.approx(high, abs=1e-9)

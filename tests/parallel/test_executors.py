"""Tests for the zero-copy execution layer (repro.parallel.executors / shm).

The load-bearing guarantees:

* every executor backend × every ``n_jobs`` × every null model produces a
  **bit-identical** ``RunResult`` (the JSON text, not just the values);
* the process backend really is zero-copy: a registered model ships as a
  token of a few dozen bytes per draw, not as a per-draw model pickle;
* lifecycle is leak-free: a raising Monte-Carlo collection tears down its
  pool and every shared-memory segment, even on the exception path.
"""

from __future__ import annotations

import concurrent.futures
import gc
import multiprocessing
import pickle
import time
import warnings

import numpy as np
import pytest

from repro.core.lambda_estimation import MonteCarloNullEstimator
from repro.core.null_models import BernoulliNull, SwapRandomizationNull
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.data.random_model import RandomDatasetModel
from repro.engine import Engine, RunSpec
from repro.fim.bitmap import pack_int_bitsets, unpack_int_bitsets
from repro.parallel import (
    EXECUTOR_NAMES,
    CompatExecutor,
    ProcessExecutor,
    SerialExecutor,
    ShmSession,
    ThreadExecutor,
    as_executor,
    executor_spec_kind,
    export_model,
    import_model,
)


@pytest.fixture(scope="module")
def dataset():
    frequencies = {item: 0.12 for item in range(10)}
    planted = [PlantedItemset(items=(0, 1), extra_support=30)]
    return generate_planted_dataset(
        frequencies, num_transactions=120, planted=planted, rng=5, name="exec-data"
    )


# ----------------------------------------------------------------------
# Executor resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_names_resolve(self):
        for name, cls in (
            ("serial", SerialExecutor),
            ("thread", ThreadExecutor),
            ("process", ProcessExecutor),
        ):
            executor, owned = as_executor(name, n_jobs=2)
            try:
                assert isinstance(executor, cls)
                assert owned
                assert executor.kind == name
            finally:
                executor.close()

    def test_none_follows_n_jobs(self):
        assert executor_spec_kind(None, n_jobs=1) == "serial"
        assert executor_spec_kind(None, n_jobs=4) == "process"

    def test_instances_are_borrowed(self):
        with SerialExecutor() as serial:
            resolved, owned = as_executor(serial, n_jobs=3)
            assert resolved is serial
            assert not owned

    def test_concurrent_futures_pool_wrapped_as_compat(self):
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            resolved, owned = as_executor(pool)
            assert isinstance(resolved, CompatExecutor)
            assert not owned

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            executor_spec_kind("gpu")
        with pytest.raises(ValueError, match="unknown executor"):
            MonteCarloNullEstimator(
                RandomDatasetModel({0: 0.5}, 10), 1, 1, 1, executor="gpu"
            )
        with pytest.raises(ValueError, match="unknown executor"):
            Engine(executor="gpu")

    def test_non_spec_types_fail_fast_with_type_error(self):
        from repro.core.miner import MinerConfig

        with pytest.raises(TypeError, match="executor must be"):
            executor_spec_kind(42)
        with pytest.raises(TypeError, match="executor must be"):
            Engine(executor=42)
        with pytest.raises(TypeError, match="executor must be"):
            MinerConfig(executor=42)
        with pytest.raises(TypeError, match="executor must be"):
            MonteCarloNullEstimator(
                RandomDatasetModel({0: 0.5}, 10), 1, 1, 1, executor=42
            )


# ----------------------------------------------------------------------
# Determinism: identical RunResult JSON across the whole matrix
# ----------------------------------------------------------------------
class TestDeterminismMatrix:
    SPEC = {"ks": (2,), "num_datasets": 8, "procedures": "both", "seed": 11}

    @pytest.fixture(scope="class")
    def baselines(self, dataset):
        texts = {}
        for null_model in ("bernoulli", "swap"):
            with Engine() as engine:
                spec = RunSpec(null_model=null_model, **self.SPEC)
                texts[null_model] = engine.run(spec, dataset=dataset).to_json()
        return texts

    @pytest.mark.parametrize("null_model", ["bernoulli", "swap"])
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    @pytest.mark.parametrize("executor", list(EXECUTOR_NAMES))
    def test_run_result_json_identical(
        self, dataset, baselines, executor, n_jobs, null_model
    ):
        with Engine(executor=executor, n_jobs=n_jobs) as engine:
            spec = RunSpec(null_model=null_model, **self.SPEC)
            text = engine.run(spec, dataset=dataset).to_json()
        assert text == baselines[null_model]

    def test_adaptive_budget_identical_across_executors(self, dataset):
        spec = RunSpec(
            ks=(2,),
            num_datasets=8,
            delta_max=32,
            null_model="swap",
            procedures="both",
            seed=11,
        )
        texts = set()
        for executor in EXECUTOR_NAMES:
            with Engine(executor=executor, n_jobs=2) as engine:
                texts.add(engine.run(spec, dataset=dataset).to_json())
        assert len(texts) == 1


# ----------------------------------------------------------------------
# Shared-memory codecs and the zero-copy protocol
# ----------------------------------------------------------------------
class TestSharedMemory:
    def test_int_bitset_matrix_round_trip(self):
        bitsets = [0, 1, (1 << 70) | 5, (1 << 128) - 1]
        matrix = pack_int_bitsets(bitsets, 130)
        assert matrix.dtype == np.uint64
        assert matrix.shape == (4, 3)
        assert unpack_int_bitsets(matrix) == bitsets

    def test_int_bitset_empty_domain(self):
        assert unpack_int_bitsets(pack_int_bitsets([0, 0], 0)) == [0, 0]

    def test_bernoulli_export_import_samples_identically(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with ShmSession() as session:
            token = export_model(model, session)
            assert token is not None
            rebuilt = import_model(token)
            a = model.sample_packed(np.random.default_rng(3))
            b = rebuilt.sample_packed(np.random.default_rng(3))
            np.testing.assert_array_equal(a.rows, b.rows)
            assert a.items == b.items

    def test_swap_export_import_samples_identically(self, dataset):
        model = SwapRandomizationNull(dataset)
        with ShmSession() as session:
            token = export_model(model, session)
            rebuilt = import_model(token)
            a = model.sample_packed(np.random.default_rng(9))
            b = rebuilt.sample_packed(np.random.default_rng(9))
            np.testing.assert_array_equal(a.rows, b.rows)
            # The rebuilt model is sampling-only.
            with pytest.raises(RuntimeError, match="shared-memory"):
                rebuilt.max_expected_support(2)

    def test_packed_index_round_trips_zero_copy(self, dataset):
        """A PackedIndex shares its uint64 rows buffer, attached zero-copy."""
        index = dataset.packed()
        with ShmSession() as session:
            token = export_model(index, session)
            rebuilt = import_model(token)
            assert rebuilt.items == index.items
            assert rebuilt.num_transactions == index.num_transactions
            np.testing.assert_array_equal(rebuilt.rows, index.rows)
            # Zero-copy: the rebuilt rows are a view over the shared segment,
            # not an owning copy.
            assert not rebuilt.rows.flags.owndata

    def test_unsupported_model_returns_none(self):
        with ShmSession() as session:
            assert export_model(object(), session) is None

    def test_registration_is_memoized(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with ProcessExecutor(n_jobs=2) as executor:
            first = executor.register(model)
            second = executor.register(model)
            assert first is second

    def test_token_is_orders_of_magnitude_smaller_than_model(self, dataset):
        """The zero-copy guard: per-draw traffic must stay token-sized.

        Host-independent regression test for the whole point of the process
        backend — the PR-3 path pickled the model (for the swap null: the
        entire observed matrix) once per draw.
        """
        model = SwapRandomizationNull(dataset)
        with ProcessExecutor(n_jobs=2) as executor:
            token = executor.register(model)
            token_size = len(pickle.dumps(token))
            model_size = len(pickle.dumps(model))
            assert token_size < 200
            assert model_size > 20 * token_size


# ----------------------------------------------------------------------
# Lifecycle: context management, exception paths, no leaks
# ----------------------------------------------------------------------
class _ExplodingModel:
    """A picklable null model whose draws raise in the worker."""

    kind = "exploding"

    def __init__(self, inner):
        self.inner = inner

    @property
    def items(self):
        return self.inner.items

    @property
    def num_items(self):
        return self.inner.num_items

    @property
    def num_transactions(self):
        return self.inner.num_transactions

    @property
    def name(self):
        return "exploding"

    def max_expected_support(self, k):
        return self.inner.max_expected_support(k)

    def sample(self, rng=None):
        raise ValueError("boom")

    def sample_packed(self, rng=None):
        raise ValueError("boom")


class TestLifecycle:
    def _assert_no_orphans(self):
        deadline = time.time() + 10.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_raising_collection_leaks_nothing(self, dataset):
        """Satellite regression: a raising fit must not orphan pools or shm."""
        model = _ExplodingModel(RandomDatasetModel.from_dataset(dataset))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises(ValueError, match="boom"):
                MonteCarloNullEstimator(
                    model,
                    2,
                    num_datasets=6,
                    mining_support=2,
                    rng=0,
                    executor="process",
                    n_jobs=2,
                )
            gc.collect()
        self._assert_no_orphans()

    def test_raising_run_through_engine_closes_session_executor(self, dataset):
        model = _ExplodingModel(RandomDatasetModel.from_dataset(dataset))
        with pytest.raises(ValueError, match="boom"):
            with Engine(executor="process", n_jobs=2) as engine:
                engine.register(dataset)
                engine.threshold(dataset, 2, num_datasets=6, null_model=model)
        self._assert_no_orphans()

    def test_process_executor_unlinks_shared_memory(self, dataset):
        from multiprocessing import shared_memory

        model = SwapRandomizationNull(dataset)
        executor = ProcessExecutor(n_jobs=2)
        token = executor.register(model)
        executor.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=token.name)
        self._assert_no_orphans()

    def test_close_is_idempotent(self):
        for spec in EXECUTOR_NAMES:
            executor, _ = as_executor(spec, n_jobs=2)
            executor.close()
            executor.close()
            assert executor.closed

    def test_closed_pool_refuses_new_work(self, dataset):
        executor = ThreadExecutor(n_jobs=2)
        executor.close()
        model = BernoulliNull.from_dataset(dataset)
        with pytest.raises(RuntimeError, match="closed"):
            list(
                executor.map_draws(
                    _sample_support, model, (), [np.random.default_rng(0)]
                )
            )

    def test_engine_close_then_reuse_builds_fresh_executor(self, dataset):
        engine = Engine(executor="thread", n_jobs=2)
        first = engine.run(
            RunSpec(ks=(2,), num_datasets=6, seed=3), dataset=dataset
        )
        engine.close()
        # A closed Engine transparently rebuilds on the next simulation.
        second_spec = RunSpec(ks=(2,), num_datasets=6, seed=4)
        second = engine.run(second_spec, dataset=dataset)
        engine.close()
        assert first.queries and second.queries

    def test_miner_refit_closes_previous_session(self, dataset):
        """A refit must not strand the previous fit's executor pool."""
        from repro.core.miner import SignificantItemsetMiner

        other = generate_planted_dataset(
            {item: 0.12 for item in range(10)},
            num_transactions=120,
            planted=[PlantedItemset(items=(0, 1), extra_support=30)],
            rng=6,
            name="exec-data-2",
        )
        miner = SignificantItemsetMiner(
            k=2, num_datasets=6, rng=0, executor="process", n_jobs=2
        )
        miner.fit(dataset)
        first_engine = miner._engine
        miner.fit(other)
        assert first_engine._executor is None  # closed, not leaked
        miner.close()
        self._assert_no_orphans()

    def test_legacy_concurrent_futures_executor_still_works(self, dataset):
        """The PR-3 path: a borrowed pool, model pickled per draw."""
        model = BernoulliNull.from_dataset(dataset)
        reference = MonteCarloNullEstimator(
            model, 2, num_datasets=6, mining_support=2, rng=0
        )
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            legacy = MonteCarloNullEstimator(
                model,
                2,
                num_datasets=6,
                mining_support=2,
                rng=0,
                executor=pool,
                n_jobs=2,
            )
        np.testing.assert_array_equal(reference._profiles, legacy._profiles)
        self._assert_no_orphans()


def _sample_support(model, rng):
    return int(model.sample_packed(rng).supports_array().sum())


def _indexed_task(model, offset, rng, draw):
    return model + offset + draw


_indexed_task.needs_draw_index = True


def _plain_task(model, offset, rng):
    return model + offset


class TestDrawIndexOptIn:
    """Tasks with ``needs_draw_index`` receive their draw ordinal.

    This is the convention sharded out-of-core counting rides on: one
    executor draw per shard, the draw index selecting the shard (see
    :mod:`repro.data.sharded`).
    """

    def _rngs(self, count):
        return [np.random.default_rng(i) for i in range(count)]

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_indexed_task_sees_ordinals(self, kind):
        executor, _ = as_executor(kind, n_jobs=2)
        with executor:
            results = list(
                executor.map_draws(_indexed_task, 100, (10,), self._rngs(4))
            )
        assert results == [110, 111, 112, 113]

    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_plain_task_signature_unchanged(self, kind):
        executor, _ = as_executor(kind, n_jobs=2)
        with executor:
            results = list(
                executor.map_draws(_plain_task, 100, (10,), self._rngs(3))
            )
        assert results == [110, 110, 110]

    def test_indexed_task_through_retry_path(self):
        from repro.parallel.faults import RetryPolicy

        with SerialExecutor(retry_policy=RetryPolicy(max_retries=1)) as executor:
            results = list(
                executor.map_draws(_indexed_task, 0, (0,), self._rngs(3))
            )
        assert results == [0, 1, 2]

    def test_compat_executor_forwards_index(self):
        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            compat = CompatExecutor(pool)
            results = list(
                compat.map_draws(_indexed_task, 5, (0,), self._rngs(3))
            )
        assert results == [5, 6, 7]

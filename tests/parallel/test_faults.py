"""Fault-injection tests for the robust execution layer and the store.

The load-bearing guarantees (see ``docs/robustness.md``):

* recovery is **bit-identical**: a run that loses a worker to SIGKILL (or a
  transient draw failure, or a straggler timeout) mid-collection produces
  the same RunResult JSON as a fault-free serial run — draws are pure
  functions of ``(model, draw index)``;
* degradation is **honest and deterministic**: when retries are exhausted,
  the run keeps the strict prefix of draws actually collected, flags every
  downstream result ``degraded=True``, and never leaks a raw
  ``BrokenProcessPool``;
* the directory store is **crash-safe**: torn writes read back as clean
  cache misses, and concurrent load-miss-then-simulate callers pay exactly
  one simulation per key across processes.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time

import numpy as np
import pytest

from repro.core.lambda_estimation import MonteCarloNullEstimator
from repro.core.null_models import BernoulliNull
from repro.core.poisson_threshold import (
    PoissonThresholdResult,
    find_poisson_threshold,
)
from repro.data.benchmarks import generate_benchmark
from repro.data.generators import PlantedItemset, generate_planted_dataset
from repro.engine import DirectoryArtifactStore, Engine, RunResult, RunSpec
from repro.engine.store import NullArtifact
from repro.parallel import (
    DEFAULT_RETRY_POLICY,
    DrawRetriesExhausted,
    FaultInjectionError,
    FaultPlan,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
)


@pytest.fixture(scope="module")
def dataset():
    frequencies = {item: 0.12 for item in range(10)}
    planted = [PlantedItemset(items=(0, 1), extra_support=30)]
    return generate_planted_dataset(
        frequencies, num_transactions=120, planted=planted, rng=5, name="faults-data"
    )


def _sample_support(model, rng):
    return int(model.sample_packed(rng).supports_array().sum())


def _collect(executor, model, num_draws, seed=0):
    rngs = np.random.default_rng(seed).spawn(num_draws)
    return list(executor.map_draws(_sample_support, model, (), rngs))


# ----------------------------------------------------------------------
# RetryPolicy and FaultPlan semantics
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff must"):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="draw_timeout"):
            RetryPolicy(draw_timeout=0.0)

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0)
        assert policy.delay_before_retry(1) == pytest.approx(0.1)
        assert policy.delay_before_retry(2) == pytest.approx(0.2)
        assert policy.delay_before_retry(3) == pytest.approx(0.4)

    def test_zero_backoff_never_sleeps(self):
        policy = RetryPolicy(backoff=0.0)
        assert policy.delay_before_retry(5) == 0.0

    def test_default_policy_recovers_crashes(self):
        assert DEFAULT_RETRY_POLICY.max_retries >= 1
        assert DEFAULT_RETRY_POLICY.backoff == 0.0


class TestFaultPlan:
    def test_fault_matches_draw_and_attempt(self):
        plan = FaultPlan().fail_draw(3, attempt=1)
        plan.apply_draw_fault(3, 0)  # wrong attempt: no fire
        plan.apply_draw_fault(2, 1)  # wrong draw: no fire
        with pytest.raises(FaultInjectionError):
            plan.apply_draw_fault(3, 1)

    def test_attempt_none_matches_every_attempt(self):
        plan = FaultPlan().fail_draw(1, attempt=None)
        for attempt in range(4):
            with pytest.raises(FaultInjectionError):
                plan.apply_draw_fault(1, attempt)

    def test_kill_fault_refuses_to_kill_the_parent(self):
        # In the plan's own process a kill fault degrades to a plain raise —
        # SIGKILL-ing the test process would be a very bad unit test.
        plan = FaultPlan().kill_worker(0)
        with pytest.raises(FaultInjectionError, match="parent"):
            plan.apply_draw_fault(0, 0)

    def test_plan_round_trips_through_pickle(self):
        plan = FaultPlan().fail_draw(2).kill_worker(5, attempt=None)
        clone = pickle.loads(pickle.dumps(plan))
        with pytest.raises(FaultInjectionError):
            clone.apply_draw_fault(2, 0)

    def test_torn_payload_matches_write_ordinal(self):
        plan = FaultPlan().tear_write(target="json", at_byte=4, ordinal=1)
        payload = b"0123456789"
        assert plan.torn_payload("json", payload) is None  # write 0 intact
        assert plan.torn_payload("json", payload) == b"0123"  # write 1 torn
        assert plan.torn_payload("json", payload) is None  # consumed

    def test_torn_payload_counts_targets_separately(self):
        plan = FaultPlan().tear_write(target="npz", at_byte=0, ordinal=0)
        assert plan.torn_payload("json", b"xx") is None
        assert plan.torn_payload("npz", b"xx") == b""


# ----------------------------------------------------------------------
# Retries: transient faults recover bit-identically on every backend
# ----------------------------------------------------------------------
class TestRetries:
    def test_serial_transient_fault_recovers_identically(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with SerialExecutor() as clean:
            baseline = _collect(clean, model, 8)
        faulty = SerialExecutor(
            retry_policy=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan().fail_draw(3),
        )
        with faulty:
            assert _collect(faulty, model, 8) == baseline

    def test_thread_transient_fault_recovers_identically(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with SerialExecutor() as clean:
            baseline = _collect(clean, model, 8)
        faulty = ThreadExecutor(
            n_jobs=2,
            retry_policy=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan().fail_draw(3).fail_draw(6),
        )
        with faulty:
            assert _collect(faulty, model, 8) == baseline

    def test_without_policy_faults_propagate_raw(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with SerialExecutor(fault_plan=FaultPlan().fail_draw(2)) as executor:
            with pytest.raises(FaultInjectionError):
                _collect(executor, model, 8)

    def test_exhausted_retries_raise_at_the_failing_draw(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        executor = SerialExecutor(
            retry_policy=RetryPolicy(max_retries=2),
            fault_plan=FaultPlan().fail_draw(5, attempt=None),
        )
        with executor, pytest.raises(DrawRetriesExhausted) as excinfo:
            _collect(executor, model, 8)
        assert excinfo.value.draw == 5
        assert excinfo.value.attempts == 3  # first run + 2 retries
        assert isinstance(excinfo.value.cause, FaultInjectionError)

    def test_timeout_reschedules_stragglers_identically(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with SerialExecutor() as clean:
            baseline = _collect(clean, model, 6)
        slow = ThreadExecutor(
            n_jobs=2,
            retry_policy=RetryPolicy(max_retries=2, draw_timeout=0.2),
            fault_plan=FaultPlan().delay_draw(1, seconds=1.0),
        )
        with slow:
            assert _collect(slow, model, 6) == baseline


# ----------------------------------------------------------------------
# Process-pool chaos: SIGKILL recovery and graceful degradation
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestProcessChaos:
    SPEC = RunSpec(ks=(2,), num_datasets=10, seed=7, procedures="both")

    @pytest.fixture(scope="class")
    def bms1(self):
        return generate_benchmark("bms1", scale=0.01, rng=0)

    @pytest.fixture(scope="class")
    def serial_baseline(self, bms1):
        with Engine() as engine:
            return engine.run(self.SPEC, dataset=bms1).to_json()

    def test_worker_sigkill_recovers_bit_identically(self, bms1, serial_baseline):
        """The acceptance scenario: lose a worker mid-collection, same JSON."""
        plan = FaultPlan().kill_worker(3)
        with ProcessExecutor(n_jobs=2, fault_plan=plan) as executor:
            with Engine(executor=executor) as engine:
                result = engine.run(self.SPEC, dataset=bms1)
        assert result.to_json() == serial_baseline
        assert not result.degraded

    def test_repeated_crashes_on_distinct_draws_still_recover(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        with SerialExecutor() as clean:
            baseline = _collect(clean, model, 8)
        plan = FaultPlan().kill_worker(1).kill_worker(6)
        with ProcessExecutor(n_jobs=2, fault_plan=plan) as executor:
            assert _collect(executor, model, 8) == baseline

    def test_exhausted_retries_degrade_to_the_collected_prefix(self, bms1, tmp_path):
        """Persistent kills never escape as BrokenProcessPool: the run comes
        back ``degraded=True`` on the strict prefix of draws collected, and
        the degraded artifact is served this session but never persisted."""
        store = DirectoryArtifactStore(tmp_path / "store")
        plan = FaultPlan().kill_worker(3, attempt=None)
        with ProcessExecutor(n_jobs=1, fault_plan=plan) as executor:
            with Engine(store, executor=executor) as engine:
                result = engine.run(self.SPEC, dataset=bms1)
        assert result.degraded
        threshold = result.thresholds[2]
        assert threshold.degraded
        # Draw 3 is unrecoverable, so each collection pass keeps draws 0-2.
        assert threshold.delta_spent == 3
        # Honest serialization: the flag survives the JSON round trip.
        round_tripped = RunResult.from_json(result.to_json())
        assert round_tripped.degraded
        # Degraded artifacts are never persisted: the store stayed empty, so
        # a healthy session re-simulates instead of inheriting the prefix.
        assert list(store.keys()) == []

    def test_degraded_threshold_round_trips_with_flag(self, dataset):
        plan = FaultPlan().kill_worker(4, attempt=None)
        with ProcessExecutor(n_jobs=1, fault_plan=plan) as executor:
            result = find_poisson_threshold(
                BernoulliNull.from_dataset(dataset),
                2,
                num_datasets=10,
                rng=3,
                executor=executor,
            )
        assert result.degraded
        assert result.delta_spent == 4
        clone = PoissonThresholdResult.from_dict(result.to_dict())
        assert clone.degraded


# ----------------------------------------------------------------------
# Graceful degradation in the estimator (in-process, coverage-visible)
# ----------------------------------------------------------------------
class TestDegradedEstimator:
    def test_degraded_prefix_is_bit_identical_to_a_smaller_budget(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        faulty = SerialExecutor(
            retry_policy=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan().fail_draw(4, attempt=None),
        )
        with faulty:
            degraded = MonteCarloNullEstimator(
                model, 2, num_datasets=10, mining_support=2, rng=0, executor=faulty
            )
        assert degraded.degraded
        assert degraded.num_datasets == 4
        reference = MonteCarloNullEstimator(
            model, 2, num_datasets=4, mining_support=2, rng=0
        )
        np.testing.assert_array_equal(degraded._profiles, reference._profiles)

    def test_zero_collected_propagates_the_cause(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        faulty = SerialExecutor(
            retry_policy=RetryPolicy(max_retries=0),
            fault_plan=FaultPlan().fail_draw(0, attempt=None),
        )
        with faulty, pytest.raises(FaultInjectionError):
            MonteCarloNullEstimator(
                model, 2, num_datasets=6, mining_support=2, rng=0, executor=faulty
            )

    def test_degraded_flag_survives_state_round_trip(self, dataset):
        model = BernoulliNull.from_dataset(dataset)
        faulty = SerialExecutor(
            retry_policy=RetryPolicy(max_retries=0),
            fault_plan=FaultPlan().fail_draw(3, attempt=None),
        )
        with faulty:
            estimator = MonteCarloNullEstimator(
                model, 2, num_datasets=6, mining_support=2, rng=0, executor=faulty
            )
        assert estimator.degraded
        clone = MonteCarloNullEstimator.from_state(estimator.state_dict())
        assert clone.degraded
        assert clone.num_datasets == 3


# ----------------------------------------------------------------------
# Crash-safe store: atomic writes, torn-write recovery, single flight
# ----------------------------------------------------------------------
def _make_artifact(dataset, key="k"):
    threshold = find_poisson_threshold(
        BernoulliNull.from_dataset(dataset), 2, num_datasets=6, rng=0
    )
    return NullArtifact(key=key, threshold=threshold)


@pytest.mark.chaos
class TestStoreCrashSafety:
    def test_torn_json_write_reads_as_cache_miss(self, dataset, tmp_path):
        plan = FaultPlan().tear_write(target="json", at_byte=20)
        store = DirectoryArtifactStore(tmp_path, fault_plan=plan)
        artifact = _make_artifact(dataset)
        with pytest.raises(FaultInjectionError):
            store.save("k", artifact)
        assert store.load("k") is None
        assert list(store.keys()) == []
        # The tear ordinal is consumed: a retried save with the same store
        # heals the torn entry in place.
        store.save("k", artifact)
        loaded = store.load("k")
        assert loaded is not None
        assert loaded.threshold.s_min == artifact.threshold.s_min

    def test_torn_npz_write_reads_as_cache_miss(self, dataset, tmp_path):
        plan = FaultPlan().tear_write(target="npz", at_byte=10)
        store = DirectoryArtifactStore(tmp_path, fault_plan=plan)
        artifact = _make_artifact(dataset)
        with pytest.raises(FaultInjectionError):
            store.save("k", artifact)
        assert store.load("k") is None
        store.save("k", artifact)
        assert store.load("k") is not None

    def test_no_temp_or_lock_droppings_visible_as_keys(self, dataset, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        store.save("k", _make_artifact(dataset))
        assert list(store.keys()) == ["k"]
        assert not list(tmp_path.glob("*.tmp*"))

    def test_single_flight_computes_once_then_hits(self, dataset, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return _make_artifact(dataset)

        first, fresh_first = store.single_flight("k", compute)
        second, fresh_second = store.single_flight("k", compute)
        assert fresh_first and not fresh_second
        assert len(calls) == 1
        assert second.threshold.s_min == first.threshold.s_min

    def test_single_flight_persist_predicate_skips_saving(self, dataset, tmp_path):
        store = DirectoryArtifactStore(tmp_path)
        artifact, fresh = store.single_flight(
            "k", lambda: _make_artifact(dataset), persist=lambda a: False
        )
        assert fresh
        assert store.load("k") is None


def _race_worker(root, barrier, queue):
    """One contender in the cross-process single-flight race."""
    dataset = generate_benchmark("bms1", scale=0.01, rng=0)
    store = DirectoryArtifactStore(root)
    barrier.wait()
    with Engine(store) as engine:
        threshold = engine.threshold(dataset, 2, num_datasets=10, seed=7)
    queue.put((engine.stats.simulations_run, threshold.s_min))


@pytest.mark.chaos
class TestConcurrentStoreAccess:
    def test_two_processes_racing_a_miss_pay_one_simulation(self, tmp_path):
        """The acceptance scenario: concurrent load-miss → simulate → save
        callers serialize on the key lock; exactly one simulation runs and
        both processes read the same uncorrupted artifact."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        workers = [
            ctx.Process(target=_race_worker, args=(tmp_path, barrier, queue))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert sum(simulations for simulations, _ in results) == 1
        assert len({s_min for _, s_min in results}) == 1
        store = DirectoryArtifactStore(tmp_path)
        assert len(list(store.keys())) == 1


# ----------------------------------------------------------------------
# Lifecycle: close() safe on half-built objects
# ----------------------------------------------------------------------
class TestCloseAfterFailedInit:
    def test_executor_close_safe_after_failed_init(self):
        for cls in (ThreadExecutor, ProcessExecutor):
            executor = cls.__new__(cls)
            with pytest.raises(ValueError):
                executor.__init__(0)
            executor.close()  # must not raise
            executor.close()  # and stays idempotent

    def test_engine_close_safe_after_failed_init(self):
        engine = Engine.__new__(Engine)
        with pytest.raises(ValueError):
            engine.__init__(n_jobs=0)
        engine.close()
        engine.close()

    def test_engine_context_manager_closes_on_error(self, dataset):
        with pytest.raises(KeyError):
            with Engine(executor="thread", n_jobs=2) as engine:
                engine.run(RunSpec(ks=(2,), num_datasets=4), dataset="nope")
        assert engine._executor is None

"""Shared helpers for the server test tier.

Every test talks to a real :class:`~repro.server.http.ReproServer` bound to
an ephemeral localhost port, through plain stdlib HTTP clients — the tests
exercise the full wire path, not handler internals.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import subprocess
import sys
import time

import pytest


def http_json(port, method, path, body=None, headers=None, timeout=30.0):
    """One HTTP exchange against a test server; returns (status, json)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


def wait_until(predicate, timeout=60.0, interval=0.02):
    """Poll ``predicate`` until truthy; returns its value or fails the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"condition not met within {timeout}s")


def make_fimi(num_transactions=40, num_items=10, density=0.35, seed=7):
    """A small BMS1-style market-basket dataset as FIMI text."""
    rng = random.Random(seed)
    lines = []
    for _ in range(num_transactions):
        txn = [item for item in range(num_items) if rng.random() < density]
        if not txn:
            txn = [rng.randrange(num_items)]
        lines.append(" ".join(str(item) for item in txn))
    return "\n".join(lines) + "\n"


@pytest.fixture
def fimi_text():
    return make_fimi()


def free_port():
    """Ask the OS for an ephemeral localhost port."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_serve(cwd, *extra_args, port=None):
    """Start a real ``repro serve`` subprocess; returns (process, port).

    The lifecycle tests exercise the actual CLI signal handling — SIGINT,
    SIGTERM drain, SIGKILL crash — which only exists across a process
    boundary.  Callers own termination (and should ``communicate()`` to
    reap the pipes).
    """
    port = port or free_port()
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(port)]
        + [str(arg) for arg in extra_args],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return process, port


def wait_serving(process, port, timeout=30.0):
    """Block until the subprocess answers /v1/healthz (or fail the test)."""

    def up():
        if process.poll() is not None:
            out, err = process.communicate()
            pytest.fail(
                f"serve exited early ({process.returncode}):\n{out}\n{err}"
            )
        try:
            status, _ = http_json(port, "GET", "/v1/healthz", timeout=2.0)
            return status == 200
        except OSError:
            return False

    wait_until(up, timeout=timeout, interval=0.05)

"""Shared helpers for the server test tier.

Every test talks to a real :class:`~repro.server.http.ReproServer` bound to
an ephemeral localhost port, through plain stdlib HTTP clients — the tests
exercise the full wire path, not handler internals.
"""

from __future__ import annotations

import http.client
import json
import random
import time

import pytest


def http_json(port, method, path, body=None, headers=None, timeout=30.0):
    """One HTTP exchange against a test server; returns (status, json)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


def wait_until(predicate, timeout=60.0, interval=0.02):
    """Poll ``predicate`` until truthy; returns its value or fails the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"condition not met within {timeout}s")


def make_fimi(num_transactions=40, num_items=10, density=0.35, seed=7):
    """A small BMS1-style market-basket dataset as FIMI text."""
    rng = random.Random(seed)
    lines = []
    for _ in range(num_transactions):
        txn = [item for item in range(num_items) if rng.random() < density]
        if not txn:
            txn = [rng.randrange(num_items)]
        lines.append(" ".join(str(item) for item in txn))
    return "\n".join(lines) + "\n"


@pytest.fixture
def fimi_text():
    return make_fimi()

"""Deterministic tests for :class:`repro.server.cache.EvictingArtifactStore`.

Everything time-dependent runs on an injected fake clock, so TTL expiry and
LRU order are exact assertions, not sleeps.  The load-bearing contracts:

* TTL expiry drops entries at (not before) their deadline;
* eviction under a byte/entry budget is strict LRU;
* keys are never evicted mid-``single_flight`` (pinning), and concurrent
  single-flight callers of one key pay exactly one compute;
* evicted/expired keys re-simulate (fresh compute) rather than error.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import MemoryArtifactStore
from repro.engine.store import NullArtifact
from repro.server import EvictingArtifactStore, artifact_nbytes
from repro.server.cache import _ENTRY_OVERHEAD_BYTES


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_artifact(key: str, payload_bytes: int = 0) -> NullArtifact:
    """A stand-in artifact whose estimator state has a known array size."""
    estimator = SimpleNamespace(
        state_dict=lambda: {
            "profiles": np.zeros(payload_bytes, dtype=np.uint8),
            "num_datasets": 1,
        },
        model=None,
    )
    threshold = SimpleNamespace(estimator=estimator)
    return NullArtifact(key=key, threshold=threshold)


class TestSizing:
    def test_artifact_nbytes_counts_arrays_plus_overhead(self):
        artifact = make_artifact("k", payload_bytes=1000)
        assert artifact_nbytes(artifact) == _ENTRY_OVERHEAD_BYTES + 1000

    def test_estimatorless_artifact_costs_overhead_only(self):
        artifact = NullArtifact(key="k", threshold=SimpleNamespace(estimator=None))
        assert artifact_nbytes(artifact) == _ENTRY_OVERHEAD_BYTES


class TestTtl:
    def test_entry_served_before_deadline_dropped_at_deadline(self):
        clock = FakeClock()
        cache = EvictingArtifactStore(ttl=10.0, clock=clock)
        cache.save("k", make_artifact("k"))
        clock.advance(9.999)
        assert cache.load("k") is not None
        clock.advance(0.001)  # exactly at the deadline
        assert cache.load("k") is None
        assert cache.stats.expirations == 1

    def test_expired_key_falls_through_to_inner_store(self):
        clock = FakeClock()
        inner = MemoryArtifactStore()
        cache = EvictingArtifactStore(inner, ttl=5.0, clock=clock)
        cache.save("k", make_artifact("k"))
        clock.advance(5.0)
        artifact = cache.load("k")  # expired in memory, promoted from inner
        assert artifact is not None
        assert cache.stats.expirations == 1
        assert cache.stats.inner_hits == 1
        # Re-admission restarts the TTL.
        clock.advance(4.999)
        assert cache.load("k") is not None
        assert cache.stats.hits == 1

    def test_purge_expired_reports_drops(self):
        clock = FakeClock()
        cache = EvictingArtifactStore(ttl=1.0, clock=clock)
        for name in ("a", "b", "c"):
            cache.save(name, make_artifact(name))
        clock.advance(1.0)
        assert cache.purge_expired() == 3
        assert len(cache) == 0

    def test_expired_key_recomputes_in_single_flight(self):
        clock = FakeClock()
        cache = EvictingArtifactStore(ttl=1.0, clock=clock)
        calls = []

        def compute():
            calls.append(1)
            return make_artifact("k")

        _, fresh = cache.single_flight("k", compute)
        assert fresh and len(calls) == 1
        clock.advance(1.0)
        _, fresh = cache.single_flight("k", compute)
        assert fresh and len(calls) == 2  # expired: re-simulated, no error


class TestLru:
    def test_lru_eviction_order_under_entry_budget(self):
        cache = EvictingArtifactStore(max_entries=2)
        cache.save("a", make_artifact("a"))
        cache.save("b", make_artifact("b"))
        assert cache.load("a") is not None  # refresh a: b becomes LRU
        cache.save("c", make_artifact("c"))
        assert cache.load("b") is None  # b was evicted, not a
        assert cache.load("a") is not None
        assert cache.load("c") is not None
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts_oldest_first(self):
        entry_size = _ENTRY_OVERHEAD_BYTES + 1000
        cache = EvictingArtifactStore(max_bytes=2 * entry_size)
        for name in ("a", "b", "c"):
            cache.save(name, make_artifact(name, payload_bytes=1000))
        assert cache.load("a") is None
        assert cache.load("b") is not None
        assert cache.load("c") is not None
        assert cache.stats.current_bytes == 2 * entry_size

    def test_evicted_key_recomputes_rather_than_errors(self):
        cache = EvictingArtifactStore(max_entries=1)
        computes = []

        def compute_for(key):
            def compute():
                computes.append(key)
                return make_artifact(key)

            return compute

        cache.single_flight("a", compute_for("a"))
        cache.single_flight("b", compute_for("b"))  # evicts a
        artifact, fresh = cache.single_flight("a", compute_for("a"))
        assert fresh
        assert artifact is not None
        assert computes == ["a", "b", "a"]

    def test_evicted_key_reloads_from_inner_store(self):
        inner = MemoryArtifactStore()
        cache = EvictingArtifactStore(inner, max_entries=1)
        cache.save("a", make_artifact("a"))
        cache.save("b", make_artifact("b"))  # evicts a from the hot tier
        assert cache.stats.evictions == 1
        assert cache.load("a") is not None  # quietly promoted back
        assert cache.stats.inner_hits == 1


class TestSingleFlight:
    def test_concurrent_callers_pay_one_compute(self):
        cache = EvictingArtifactStore()
        release = threading.Event()
        computes = []
        results = []

        def compute():
            computes.append(threading.get_ident())
            release.wait(timeout=10.0)
            return make_artifact("k")

        def flyer():
            results.append(cache.single_flight("k", compute))

        threads = [threading.Thread(target=flyer) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Give the first caller time to enter compute, then release everyone.
        for _ in range(100):
            if computes:
                break
            threading.Event().wait(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(computes) == 1
        assert len(results) == 4
        assert sum(1 for _, fresh in results if fresh) == 1
        artifacts = {id(artifact) for artifact, _ in results}
        assert len(artifacts) == 1  # everyone sees the one computed artifact

    def test_in_flight_key_is_never_evicted(self):
        """Eviction pressure during a flight cannot drop the flight's key."""
        cache = EvictingArtifactStore(max_entries=1)
        entered = threading.Event()
        release = threading.Event()
        outcome = {}

        def compute():
            entered.set()
            release.wait(timeout=10.0)
            return make_artifact("hot")

        def flyer():
            outcome["result"] = cache.single_flight("hot", compute)

        thread = threading.Thread(target=flyer)
        thread.start()
        assert entered.wait(timeout=10.0)
        # While 'hot' is in flight, hammer the cache over its budget.
        for index in range(5):
            cache.save(f"filler-{index}", make_artifact(f"filler-{index}"))
        release.set()
        thread.join(timeout=10.0)
        artifact, fresh = outcome["result"]
        assert fresh
        # The freshly admitted artifact survived the eviction pressure and
        # is immediately loadable (the fillers were evicted instead).
        assert cache.load("hot") is artifact

    def test_directory_inner_store_persists_without_self_deadlock(
        self, tiny_dataset, tmp_path
    ):
        """The flight holds the directory store's flock while persisting.

        flock is not reentrant across file descriptors, so the write-through
        must go via ``save_locked`` — a plain ``save`` inside the held lock
        would deadlock against itself.  This completes (quickly) and leaves
        the artifact durable on disk.
        """
        from repro.core.null_models import BernoulliNull
        from repro.core.poisson_threshold import find_poisson_threshold
        from repro.engine import DirectoryArtifactStore

        inner = DirectoryArtifactStore(tmp_path)
        cache = EvictingArtifactStore(inner)
        threshold = find_poisson_threshold(
            BernoulliNull.from_dataset(tiny_dataset), 2, num_datasets=4, rng=0
        )

        def compute():
            return NullArtifact(key="k", threshold=threshold)

        done = threading.Event()
        result = {}

        def flyer():
            result["value"] = cache.single_flight("k", compute)
            done.set()

        thread = threading.Thread(target=flyer, daemon=True)
        thread.start()
        assert done.wait(timeout=30.0), "single_flight deadlocked"
        thread.join()
        _, fresh = result["value"]
        assert fresh
        assert inner.load("k") is not None  # durably written through
        assert cache.stats.persist_failures == 0

    def test_degraded_artifacts_respect_persist_predicate(self):
        inner = MemoryArtifactStore()
        cache = EvictingArtifactStore(inner)
        artifact, fresh = cache.single_flight(
            "k", lambda: make_artifact("k"), persist=lambda a: False
        )
        assert fresh
        assert cache.load("k") is None  # not admitted anywhere
        assert inner.load("k") is None


class TestValidation:
    def test_bad_budgets_rejected(self):
        with pytest.raises(ValueError):
            EvictingArtifactStore(max_bytes=-1)
        with pytest.raises(ValueError):
            EvictingArtifactStore(max_entries=0)
        with pytest.raises(ValueError):
            EvictingArtifactStore(ttl=0)

    def test_keys_unions_hot_and_inner(self):
        inner = MemoryArtifactStore()
        inner.save("cold", make_artifact("cold"))
        cache = EvictingArtifactStore(inner)
        cache.save("hot", make_artifact("hot"))
        assert set(cache.keys()) == {"hot", "cold"}

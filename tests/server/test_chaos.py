"""Chaos tier for the serving path: faults under live HTTP traffic.

Extends the :class:`~repro.parallel.FaultPlan` machinery through the whole
server stack.  The contract under fire:

* exhausted draw retries mid-query surface as a well-formed
  ``degraded=True`` result document — never an HTTP 500, never a torn
  half-answer;
* a torn artifact write (simulated disk crash) costs durability, not
  correctness: the in-memory answer is served, the failure is counted in
  ``/v1/statz``, and a fresh server over the same directory re-simulates
  from the honest cache miss;
* a SIGKILLed worker process behind the server recovers through the retry
  machinery and still yields a full-budget, non-degraded answer.

Run via ``make chaos`` (alongside ``tests/parallel/test_faults.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import DirectoryArtifactStore
from repro.parallel import FaultPlan, ProcessExecutor, RetryPolicy, SerialExecutor
from repro.server import ReproServer, ServerState

from tests.server.conftest import http_json, wait_until

pytestmark = pytest.mark.chaos

SPEC = {
    "ks": [2],
    "epsilon": 0.1,
    "num_datasets": 12,
    "seed": 3,
}


def upload(port, tenant, data):
    status, payload = http_json(
        port, "POST", f"/v1/tenants/{tenant}/datasets", {"data": data}
    )
    assert status == 201, payload
    return payload


def run_query(port, tenant, dataset_id, timeout=120.0, **overrides):
    """Submit and poll one query; asserts no response is ever a 5xx."""
    status, submitted = http_json(
        port,
        "POST",
        f"/v1/tenants/{tenant}/queries",
        dict(SPEC, dataset=dataset_id, **overrides),
    )
    assert status in (200, 202), submitted

    def poll():
        code, document = http_json(
            port, "GET", f"/v1/queries/{submitted['query_id']}"
        )
        assert code == 200, document
        return document if document["status"] in ("done", "failed") else None

    return wait_until(poll, timeout=timeout)


class TestDrawFaultsDegradeGracefully:
    def test_exhausted_retries_yield_degraded_not_500(self, fimi_text):
        # Every worker Engine gets an executor whose draw 2 always fails
        # with no retries left: the Engine's recovery path serves the
        # honest strict prefix (draws 0-1) with degraded=True.
        def faulty_executor():
            return SerialExecutor(
                retry_policy=RetryPolicy(max_retries=0),
                fault_plan=FaultPlan().fail_draw(2, attempt=None),
            )

        state = ServerState(executor=faulty_executor)
        with ReproServer(state, max_workers=2, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)

            def client(_index):
                return run_query(server.port, "acme", dataset["dataset_id"])

            with ThreadPoolExecutor(max_workers=6) as pool:
                documents = list(pool.map(client, range(6)))

            for document in documents:
                assert document["status"] == "done"
                assert document["error"] is None
                assert document["degraded"] is True
                # The strict prefix: exactly the two draws before the fault.
                assert document["delta_spent"] == {"2": 2}
                assert document["result"] is not None

            # Degraded artifacts are never admitted to the cache — nothing
            # dishonest can be served to a later, fault-free session.
            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["cache"]["entries"] == 0

    def test_degraded_run_not_persisted_to_disk(self, fimi_text, tmp_path):
        def faulty_executor():
            return SerialExecutor(
                retry_policy=RetryPolicy(max_retries=0),
                fault_plan=FaultPlan().fail_draw(1, attempt=None),
            )

        store = DirectoryArtifactStore(tmp_path)
        state = ServerState(store, executor=faulty_executor)
        with ReproServer(state, max_workers=1, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)
            document = run_query(server.port, "acme", dataset["dataset_id"])
            assert document["degraded"] is True
        assert list(DirectoryArtifactStore(tmp_path).keys()) == []


class TestTornWritesCostDurabilityNotCorrectness:
    def test_torn_artifact_write_served_from_memory(self, fimi_text, tmp_path):
        # The store tears the artifact JSON mid-write (simulated crash).
        store = DirectoryArtifactStore(
            tmp_path, fault_plan=FaultPlan().tear_write(target="json", at_byte=16)
        )
        state = ServerState(store)
        with ReproServer(state, max_workers=2, max_pending=64) as server:
            port = server.port
            dataset = upload(port, "acme", fimi_text)
            document = run_query(port, "acme", dataset["dataset_id"])
            # The simulation itself succeeded: full budget, not degraded.
            assert document["status"] == "done"
            assert document["degraded"] is False
            assert document["delta_spent"] == {"2": SPEC["num_datasets"]}
            # Durability failed and was counted, nothing more.
            _, statz = http_json(port, "GET", "/v1/statz")
            assert statz["cache"]["persist_failures"] == 1
            # The hot tier still serves the key without re-simulating.
            repeat = run_query(port, "acme", dataset["dataset_id"])
            assert repeat["status"] == "done"
            _, statz = http_json(port, "GET", "/v1/statz")
            assert statz["engine"]["simulations_run"] == 1

        # "Crash": a fresh server over the same directory sees an honest
        # miss (torn file never became visible) and re-simulates cleanly.
        with ReproServer(
            ServerState(DirectoryArtifactStore(tmp_path)),
            max_workers=1,
            max_pending=64,
        ) as server:
            dataset = upload(server.port, "acme", fimi_text)
            document = run_query(server.port, "acme", dataset["dataset_id"])
            assert document["status"] == "done"
            assert document["degraded"] is False
            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["engine"]["simulations_run"] == 1
            assert statz["cache"]["persist_failures"] == 0

    def test_concurrent_queries_during_torn_write_never_500(
        self, fimi_text, tmp_path
    ):
        store = DirectoryArtifactStore(
            tmp_path, fault_plan=FaultPlan().tear_write(target="json", at_byte=8)
        )
        state = ServerState(store)
        with ReproServer(state, max_workers=4, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)

            def client(seed):
                return run_query(
                    server.port, "acme", dataset["dataset_id"], seed=seed
                )

            with ThreadPoolExecutor(max_workers=8) as pool:
                documents = list(pool.map(client, [1, 2, 3, 4] * 2))
            assert all(doc["status"] == "done" for doc in documents)
            assert all(doc["error"] is None for doc in documents)


class TestWorkerKillRecovery:
    def test_sigkilled_worker_recovers_to_full_budget(self, fimi_text):
        # Draw 1's worker is SIGKILLed on its first attempt; the default
        # retry policy respawns and replays, so the served answer is the
        # full-budget, non-degraded one.
        def killing_executor():
            return ProcessExecutor(
                2, fault_plan=FaultPlan().kill_worker(1)
            )

        state = ServerState(executor=killing_executor)
        with ReproServer(state, max_workers=1, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)
            document = run_query(server.port, "acme", dataset["dataset_id"])
            assert document["status"] == "done"
            assert document["degraded"] is False
            assert document["delta_spent"] == {"2": SPEC["num_datasets"]}

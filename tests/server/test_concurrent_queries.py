"""Concurrency stress tier: N parallel clients against one live server.

The acceptance contract of the serving layer, asserted over the real wire
path (threads *and* asyncio clients):

* N concurrent identical queries pay for **exactly one** Monte-Carlo
  simulation per artifact key, and every client reads a **bit-identical**
  result document;
* tenants never see each other's dataset ids or query ids, while identical
  *content* deduplicates onto shared fingerprints and shared simulations;
* a saturated admission queue answers immediately from an honest
  strict-prefix budget (``degraded=True``) and background refinement later
  upgrades the stored answer to the full budget.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.server import ReproServer

from tests.server.conftest import http_json, make_fimi, wait_until

SPEC = {
    "ks": [2],
    "alphas": [0.05],
    "betas": [0.05],
    "epsilon": 0.1,
    "num_datasets": 12,
    "seed": 11,
}


def upload(port, tenant, data, name=None):
    body = {"data": data}
    if name is not None:
        body["name"] = name
    status, payload = http_json(
        port, "POST", f"/v1/tenants/{tenant}/datasets", body
    )
    assert status in (200, 201), payload
    return payload


def submit(port, tenant, dataset_id, **overrides):
    body = dict(SPEC, dataset=dataset_id, **overrides)
    status, payload = http_json(
        port, "POST", f"/v1/tenants/{tenant}/queries", body
    )
    assert status in (200, 202), payload
    return payload


def finished(port, query_id, tenant=None, timeout=60.0):
    """Poll a query until it leaves the queue; returns the final document."""
    headers = {"X-Tenant": tenant} if tenant else None

    def poll():
        status, payload = http_json(
            port, "GET", f"/v1/queries/{query_id}", headers=headers
        )
        assert status == 200, payload
        return payload if payload["status"] in ("done", "failed") else None

    return wait_until(poll, timeout=timeout)


def canonical(document):
    """The result payload, serialized canonically for bitwise comparison."""
    return json.dumps(document["result"], sort_keys=True)


class TestParallelIdenticalQueries:
    def test_one_simulation_bit_identical_results(self, fimi_text):
        num_clients = 12
        with ReproServer(max_workers=4, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)

            def client(_index):
                submitted = submit(server.port, "acme", dataset["dataset_id"])
                return finished(server.port, submitted["query_id"], "acme")

            with ThreadPoolExecutor(max_workers=num_clients) as pool:
                documents = list(pool.map(client, range(num_clients)))

            assert all(doc["status"] == "done" for doc in documents)
            assert all(doc["degraded"] is False for doc in documents)
            payloads = {canonical(doc) for doc in documents}
            assert len(payloads) == 1, "identical queries must be bit-identical"
            assert documents[0]["delta_spent"] == {"2": SPEC["num_datasets"]}

            status, statz = http_json(server.port, "GET", "/v1/statz")
            assert status == 200
            # One artifact key (one k, one seed, one Δ) → one simulation,
            # no matter how many clients or worker threads raced for it.
            assert statz["engine"]["simulations_run"] == 1
            assert statz["queue"]["jobs"] == {"done": num_clients}

    def test_distinct_keys_each_simulate_once(self, fimi_text):
        seeds = [1, 2, 3, 4]
        with ReproServer(max_workers=4, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)

            def client(seed):
                # Two clients per seed: every artifact key is contended.
                submitted = submit(
                    server.port, "acme", dataset["dataset_id"], seed=seed
                )
                return seed, finished(server.port, submitted["query_id"])

            with ThreadPoolExecutor(max_workers=2 * len(seeds)) as pool:
                documents = list(pool.map(client, seeds + seeds))

            by_seed = {}
            for seed, document in documents:
                assert document["status"] == "done"
                by_seed.setdefault(seed, set()).add(canonical(document))
            # Same seed → identical bits; different seed → different runs.
            assert all(len(variants) == 1 for variants in by_seed.values())
            assert len(set().union(*by_seed.values())) == len(seeds)

            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["engine"]["simulations_run"] == len(seeds)


class TestAsyncioClients:
    def test_async_client_swarm(self, fimi_text):
        """The asyncio flavor of the swarm: raw HTTP over open_connection."""

        async def exchange(port, method, path, body=None):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            payload = b"" if body is None else json.dumps(body).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + payload)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = raw.partition(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1])
            return status, json.loads(body)

        async def client(port, dataset_id):
            status, submitted = await exchange(
                port,
                "POST",
                "/v1/tenants/acme/queries",
                dict(SPEC, dataset=dataset_id),
            )
            assert status in (200, 202), submitted
            while True:
                status, document = await exchange(
                    port, "GET", f"/v1/queries/{submitted['query_id']}"
                )
                assert status == 200
                if document["status"] in ("done", "failed"):
                    return document
                await asyncio.sleep(0.02)

        async def swarm(port, dataset_id, count):
            return await asyncio.gather(
                *(client(port, dataset_id) for _ in range(count))
            )

        with ReproServer(max_workers=4, max_pending=64) as server:
            dataset = upload(server.port, "acme", fimi_text)
            documents = asyncio.run(
                swarm(server.port, dataset["dataset_id"], 8)
            )
            assert all(doc["status"] == "done" for doc in documents)
            assert len({canonical(doc) for doc in documents}) == 1
            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["engine"]["simulations_run"] == 1


class TestTenantIsolation:
    def test_content_shared_identifiers_private(self, fimi_text):
        with ReproServer(max_workers=2, max_pending=64) as server:
            port = server.port
            acme = upload(port, "acme", fimi_text, name="acme-baskets")
            globex = upload(port, "globex", fimi_text, name="globex-baskets")

            # Identical content deduplicates onto one fingerprint but the
            # tenants receive distinct, private dataset ids.
            assert acme["fingerprint"] == globex["fingerprint"]
            assert acme["dataset_id"] != globex["dataset_id"]

            # A tenant cannot address the other's dataset id...
            status, payload = http_json(
                port,
                "POST",
                "/v1/tenants/globex/queries",
                dict(SPEC, dataset=acme["dataset_id"]),
            )
            assert status == 404, payload
            # ...nor see it in their listing.
            _, listing = http_json(port, "GET", "/v1/tenants/globex/datasets")
            assert [d["dataset_id"] for d in listing["datasets"]] == [
                globex["dataset_id"]
            ]
            assert listing["datasets"][0]["name"] == "globex-baskets"

            # Both tenants run the same spec concurrently: results agree
            # bitwise and the simulation is paid for once, server-wide.
            def client(tenant, dataset_id):
                submitted = submit(port, tenant, dataset_id)
                return finished(port, submitted["query_id"], tenant)

            with ThreadPoolExecutor(max_workers=2) as pool:
                acme_future = pool.submit(client, "acme", acme["dataset_id"])
                globex_future = pool.submit(
                    client, "globex", globex["dataset_id"]
                )
                acme_doc = acme_future.result()
                globex_doc = globex_future.result()
            assert canonical(acme_doc) == canonical(globex_doc)
            _, statz = http_json(port, "GET", "/v1/statz")
            assert statz["engine"]["simulations_run"] == 1
            assert statz["tenants"] == 2

            # Query ids do not leak across tenants: asking for acme's query
            # as globex is indistinguishable from a nonexistent id.
            status, payload = http_json(
                port,
                "GET",
                f"/v1/queries/{acme_doc['query_id']}",
                headers={"X-Tenant": "globex"},
            )
            assert status == 404
            status, _ = http_json(
                port,
                "GET",
                f"/v1/queries/{acme_doc['query_id']}",
                headers={"X-Tenant": "acme"},
            )
            assert status == 200

    def test_reupload_same_tenant_deduplicates(self, fimi_text):
        with ReproServer() as server:
            first = upload(server.port, "acme", fimi_text)
            second = upload(server.port, "acme", fimi_text)
            assert first["deduplicated"] is False
            assert second["deduplicated"] is True
            assert second["dataset_id"] == first["dataset_id"]


class TestSaturationDegradesThenRefines:
    def test_shed_answer_is_strict_prefix_then_refined(self, fimi_text):
        # max_pending=0 makes every submission take the saturation path
        # deterministically: answered inline at the shed budget, refined
        # in the background.
        shed_budget = 5
        full_budget = 40
        with ReproServer(
            max_workers=1, max_pending=0, shed_num_datasets=shed_budget
        ) as server:
            port = server.port
            dataset = upload(port, "acme", fimi_text)
            status, document = http_json(
                port,
                "POST",
                "/v1/tenants/acme/queries",
                dict(
                    SPEC,
                    dataset=dataset["dataset_id"],
                    num_datasets=full_budget,
                ),
            )
            # Saturation: the POST already carries the degraded answer.
            assert status == 200, document
            assert document["status"] == "done"
            assert document["shed"] is True
            assert document["degraded"] is True
            assert document["delta_spent"] == {"2": shed_budget}
            assert document["result"] is not None

            query_id = document["query_id"]

            def refined():
                _, current = http_json(port, "GET", f"/v1/queries/{query_id}")
                return current if current["refined"] else None

            upgraded = wait_until(refined, timeout=120.0)
            assert upgraded["status"] == "done"
            assert upgraded["degraded"] is False
            assert upgraded["delta_spent"] == {"2": full_budget}

            _, statz = http_json(port, "GET", "/v1/statz")
            assert statz["queue"]["shed"] >= 1
            assert statz["queue"]["refined"] >= 1

    def test_spec_within_shed_budget_is_not_degraded(self, fimi_text):
        """Saturation only degrades queries that asked for more than Δ₀."""
        with ReproServer(
            max_workers=1, max_pending=0, shed_num_datasets=64
        ) as server:
            dataset = upload(server.port, "acme", fimi_text)
            status, document = http_json(
                server.port,
                "POST",
                "/v1/tenants/acme/queries",
                dict(SPEC, dataset=dataset["dataset_id"]),
            )
            assert status == 200
            assert document["status"] == "done"
            assert document["shed"] is False
            assert document["degraded"] is False
            assert document["delta_spent"] == {"2": SPEC["num_datasets"]}


@pytest.mark.slow
class TestSustainedLoad:
    def test_mixed_tenants_and_specs_under_load(self):
        """A broader soak: 3 tenants x 3 specs x 3 clients, one server."""
        tenants = ("acme", "globex", "initech")
        seeds = (1, 2, 3)
        with ReproServer(max_workers=4, max_pending=64) as server:
            port = server.port
            datasets = {
                tenant: upload(port, tenant, make_fimi(seed=index))
                for index, tenant in enumerate(tenants)
            }

            def client(job):
                tenant, seed = job
                submitted = submit(
                    port, tenant, datasets[tenant]["dataset_id"], seed=seed
                )
                return job, finished(port, submitted["query_id"], tenant)

            jobs = [(t, s) for t in tenants for s in seeds] * 3
            with ThreadPoolExecutor(max_workers=12) as pool:
                outcomes = list(pool.map(client, jobs))

            variants = {}
            for job, document in outcomes:
                assert document["status"] == "done"
                variants.setdefault(job, set()).add(canonical(document))
            assert all(len(v) == 1 for v in variants.values())

            _, statz = http_json(port, "GET", "/v1/statz")
            # One simulation per (dataset, seed) pair, not per request.
            assert statz["engine"]["simulations_run"] == len(tenants) * len(
                seeds
            )

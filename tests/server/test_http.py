"""Protocol and endpoint edge cases for the HTTP front end.

Malformed input of every shape must come back as a well-formed JSON error
with a definite 4xx status — the server's failure contract says 5xx is
reserved for genuine bugs, not bad requests.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.server import ReproServer

from tests.server.conftest import http_json


@pytest.fixture(scope="module")
def server():
    with ReproServer(max_workers=1, max_pending=8) as instance:
        yield instance


@pytest.fixture(scope="module")
def dataset_id(server):
    status, payload = http_json(
        server.port,
        "POST",
        "/v1/tenants/acme/datasets",
        {"transactions": [[1, 2, 3], [1, 2], [2, 3], [4]]},
    )
    assert status == 201
    return payload["dataset_id"]


class TestRouting:
    def test_healthz(self, server):
        status, payload = http_json(server.port, "GET", "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert "version" in payload

    def test_unknown_route_is_404(self, server):
        status, payload = http_json(server.port, "GET", "/v1/nothing/here")
        assert status == 404
        assert "error" in payload

    def test_wrong_method_is_405(self, server):
        for method, path in [
            ("POST", "/v1/healthz"),
            ("POST", "/v1/statz"),
            ("DELETE", "/v1/tenants/acme/datasets"),
            ("GET", "/v1/tenants/acme/queries"),
            ("POST", "/v1/queries/q-123"),
        ]:
            status, payload = http_json(server.port, method, path)
            assert status == 405, (method, path, payload)
            assert "error" in payload

    def test_statz_shape(self, server):
        status, payload = http_json(server.port, "GET", "/v1/statz")
        assert status == 200
        assert set(payload) == {
            "version",
            "uptime_seconds",
            "engine",
            "cache",
            "queue",
            "tenants",
            "journal",
            "recovery",
        }
        assert set(payload["engine"]) == {
            "datasets_registered",
            "simulations_run",
            "artifact_cache_hits",
        }
        assert "hit_rate" in payload["cache"]
        assert {"queue_depth", "capacity", "shed", "refined"} <= set(
            payload["queue"]
        )


class TestRawProtocol:
    def exchange_raw(self, port, raw):
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(raw)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        response = b"".join(chunks)
        head, _, body = response.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(body) if body else None

    def test_malformed_request_line(self, server):
        status, payload = self.exchange_raw(server.port, b"NONSENSE\r\n\r\n")
        assert status == 400
        assert "error" in payload

    def test_invalid_content_length(self, server):
        raw = (
            b"POST /v1/tenants/acme/datasets HTTP/1.1\r\n"
            b"Content-Length: banana\r\n\r\n"
        )
        status, payload = self.exchange_raw(server.port, raw)
        assert status == 400
        assert "error" in payload

    def test_connection_closes_after_response(self, server):
        # recv() draining to EOF in exchange_raw is itself the assertion
        # that the server closes; also check the advertised header.
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        assert b"Connection: close" in response
        assert b"Content-Type: application/json" in response


class TestBodyLimits:
    def test_oversized_body_is_413(self):
        with ReproServer(max_body_bytes=1024) as small_server:
            status, payload = http_json(
                small_server.port,
                "POST",
                "/v1/tenants/acme/datasets",
                {"data": "1 2\n" * 2048},
            )
            assert status == 413
            assert "error" in payload

    def test_non_json_body_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/v1/tenants/acme/datasets", body=b"not json"
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "error" in payload
        finally:
            connection.close()

    def test_json_array_body_is_400(self, server):
        status, payload = http_json(
            server.port, "POST", "/v1/tenants/acme/datasets", [1, 2, 3]
        )
        assert status == 400
        assert "error" in payload


class TestDatasetValidation:
    def test_requires_exactly_one_payload_kind(self, server):
        for body in [
            {},
            {"data": "1 2\n", "transactions": [[1, 2]]},
        ]:
            status, payload = http_json(
                server.port, "POST", "/v1/tenants/acme/datasets", body
            )
            assert status == 400, payload

    def test_rejects_bad_transactions(self, server):
        for transactions in ["1 2", [1, 2], [["x", "y"]]]:
            status, payload = http_json(
                server.port,
                "POST",
                "/v1/tenants/acme/datasets",
                {"transactions": transactions},
            )
            assert status == 400, payload
            assert "error" in payload

    def test_rejects_unknown_format(self, server):
        status, payload = http_json(
            server.port,
            "POST",
            "/v1/tenants/acme/datasets",
            {"data": "1 2\n", "format": "arff"},
        )
        assert status == 400
        assert "arff" in payload["error"]

    def test_rejects_invalid_tenant_name(self, server):
        for tenant in ("-leading", "a/b", "a" * 65, ".."):
            status, payload = http_json(
                server.port,
                "POST",
                f"/v1/tenants/{tenant}/datasets",
                {"transactions": [[1, 2]]},
            )
            assert status in (400, 404), (tenant, payload)
            assert "error" in payload

    def test_rejects_non_string_name(self, server):
        status, payload = http_json(
            server.port,
            "POST",
            "/v1/tenants/acme/datasets",
            {"transactions": [[1, 2]], "name": 7},
        )
        assert status == 400


class TestQueryValidation:
    def test_missing_dataset_field(self, server):
        status, payload = http_json(
            server.port, "POST", "/v1/tenants/acme/queries", {"ks": [2]}
        )
        assert status == 400
        assert "dataset" in payload["error"]

    def test_unknown_dataset_id(self, server):
        status, payload = http_json(
            server.port,
            "POST",
            "/v1/tenants/acme/queries",
            {"dataset": "ds-doesnotexist", "ks": [2]},
        )
        assert status == 404

    def test_unknown_spec_fields_rejected(self, server, dataset_id):
        status, payload = http_json(
            server.port,
            "POST",
            "/v1/tenants/acme/queries",
            {"dataset": dataset_id, "ks": [2], "frobnicate": True},
        )
        assert status == 400
        assert "frobnicate" in payload["error"]

    def test_invalid_spec_values_rejected(self, server, dataset_id):
        for overrides in [
            {"ks": [0]},
            {"epsilon": 2.0},
            {"num_datasets": 0},
            {"null_model": "nonesuch"},
            {"procedures": "9"},
        ]:
            status, payload = http_json(
                server.port,
                "POST",
                "/v1/tenants/acme/queries",
                dict({"dataset": dataset_id}, **overrides),
            )
            assert status == 400, (overrides, payload)
            assert "error" in payload

    def test_unknown_query_id_is_404(self, server):
        status, payload = http_json(
            server.port, "GET", "/v1/queries/q-doesnotexist"
        )
        assert status == 404

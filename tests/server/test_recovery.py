"""The durability tier: journal replay, crash recovery, deadlines, drain.

The lifecycle contract of ``docs/server.md``:

* the write-ahead :class:`~repro.server.journal.QueryJournal` survives torn
  trailing lines and replays last-wins per query id;
* :func:`~repro.server.journal.recover_server` rebuilds a dead server's
  conversational state — every journalled query id resolves after restart,
  terminal jobs keep their status, live ones re-enqueue (mid-``running``
  deaths flagged ``recovered``), unreplayable ones degrade to an honest
  ``failed``, never a 404/500;
* a ``deadline_ms`` budget (and ``DELETE /v1/queries/{id}``) stops the
  Monte-Carlo loop at a draw boundary and serves the strict prefix with
  ``degraded=True`` — bit-identical to a fixed run at the spent Δ;
* drain flips ``/v1/readyz`` to 503 + ``Retry-After`` and refuses new
  submissions while in-flight work completes.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.core.poisson_threshold import find_poisson_threshold
from repro.engine import DirectoryArtifactStore, RunSpec
from repro.parallel import CancelToken
from repro.server import (
    BrokerDraining,
    QueryBroker,
    QueryJournal,
    ReproServer,
    ServerState,
    recover_server,
)
from repro.server.journal import JobRecord

from tests.server.conftest import http_json, make_fimi, wait_until

SPEC = {
    "ks": [2],
    "epsilon": 0.1,
    "num_datasets": 12,
    "seed": 11,
}


def upload(port, tenant, data):
    status, payload = http_json(
        port, "POST", f"/v1/tenants/{tenant}/datasets", {"data": data}
    )
    assert status in (200, 201), payload
    return payload


def submit(port, tenant, dataset_id, **overrides):
    status, payload = http_json(
        port,
        "POST",
        f"/v1/tenants/{tenant}/queries",
        dict(SPEC, dataset=dataset_id, **overrides),
    )
    assert status in (200, 202), payload
    return payload


def finished(port, query_id, timeout=60.0):
    def poll():
        status, payload = http_json(port, "GET", f"/v1/queries/{query_id}")
        assert status == 200, payload
        return payload if payload["status"] in ("done", "failed") else None

    return wait_until(poll, timeout=timeout)


def http_raw(port, method, path, body=None, headers=None):
    """Like http_json but also returns the response headers."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        return (
            response.status,
            json.loads(raw) if raw else None,
            dict(response.getheaders()),
        )
    finally:
        connection.close()


# ---------------------------------------------------------------------------
# The journal itself
# ---------------------------------------------------------------------------


class TestJournalReplay:
    def test_round_trip_last_wins(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        journal.dataset_registered(
            "acme",
            dataset_id="ds-1",
            fingerprint="sha-1",
            name="toy",
            items=[1, 2],
            transactions=[[1, 2], [1]],
        )
        journal.job_event(
            "q-1",
            "submitted",
            tenant="acme",
            dataset_id="ds-1",
            fingerprint="sha-1",
            spec={"ks": [2]},
        )
        journal.job_event("q-1", "running")
        journal.job_event("q-1", "done", shed=True)

        replay = journal.replay()
        assert replay.skipped_lines == 0
        assert [d.dataset_id for d in replay.datasets] == ["ds-1"]
        assert replay.datasets[0].transactions == [[1, 2], [1]]
        job = replay.jobs["q-1"]
        # Last-wins status, sparse fields merged from earlier records.
        assert job.status == "done"
        assert job.tenant == "acme"
        assert job.fingerprint == "sha-1"
        assert job.spec == {"ks": [2]}
        assert job.shed is True

    def test_torn_trailing_line_costs_one_record(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = QueryJournal(str(path))
        journal.job_event("q-1", "submitted", tenant="acme", spec={})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "job", "query_id": "q-2", "stat')  # torn

        replay = journal.replay()
        assert replay.skipped_lines == 1
        assert set(replay.jobs) == {"q-1"}

    def test_unknown_events_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = QueryJournal(str(path))
        journal.append({"event": "lease", "v": 2})  # future record kind
        journal.job_event("q-1", "submitted", tenant="acme")
        replay = journal.replay()
        assert replay.skipped_lines == 1
        assert set(replay.jobs) == {"q-1"}

    def test_transition_without_submission_is_skipped(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        journal.job_event("q-ghost", "running")  # no tenant, no prior record
        replay = journal.replay()
        assert replay.jobs == {}
        assert replay.skipped_lines == 1

    def test_missing_file_is_an_empty_replay(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "never-written.jsonl"))
        replay = journal.replay()
        assert replay.datasets == [] and replay.jobs == {}


class TestCancelToken:
    def test_expired_deadline_fires_with_deadline_reason(self):
        token = CancelToken.after(0.0)
        assert token.should_stop() is True
        assert token.reason == "deadline"

    def test_first_reason_wins(self):
        token = CancelToken()
        token.cancel("client")
        token.cancel("drain")
        assert token.reason == "client"

    def test_unarmed_token_never_fires(self):
        token = CancelToken()
        assert token.should_stop() is False
        assert token.reason is None


# ---------------------------------------------------------------------------
# Deadlines: strict-prefix degradation, bit-identical at the spent budget
# ---------------------------------------------------------------------------


class TestDeadlineStrictPrefix:
    def test_cancelled_threshold_bit_identical_to_spent_budget(self):
        # The cancelled run must be a *strict prefix* of the Monte-Carlo
        # stream: byte-for-byte the run you would have gotten by asking for
        # the spent Δ in the first place (same seed, per-draw child RNGs).
        # The guarantee holds when the halving search decides within its
        # first estimator (every later iteration re-spawns Δ child streams,
        # so a Δ=12 run and a Δ=1 run diverge from iteration two on); this
        # dense pinned-seed dataset exits in the first iteration.
        dataset_text = make_fimi(
            num_transactions=60, num_items=8, density=0.7, seed=1
        )
        from io import StringIO

        from repro.data.io import read_fimi

        dataset = read_fimi(StringIO(dataset_text), name="dense")

        expired = CancelToken.after(0.0)
        cut = find_poisson_threshold(
            dataset,
            2,
            epsilon=0.1,
            num_datasets=12,
            rng=np.random.default_rng(5),
            cancel=expired,
        )
        assert cut.degraded is True
        spent = cut.delta_spent or cut.num_datasets
        assert spent < 12

        reference = find_poisson_threshold(
            dataset,
            2,
            epsilon=0.1,
            num_datasets=spent,
            rng=np.random.default_rng(5),
        )
        assert reference.s_min == cut.s_min
        assert reference.bound_at_s_min == cut.bound_at_s_min
        assert reference.bound_curve == cut.bound_curve

    def test_deadline_ms_zero_yields_degraded_strict_prefix(self, fimi_text):
        with ReproServer(max_workers=1, max_pending=8) as server:
            dataset = upload(server.port, "acme", fimi_text)
            submitted = submit(
                server.port, "acme", dataset["dataset_id"], deadline_ms=0
            )
            document = finished(server.port, submitted["query_id"])
            assert document["status"] == "done"
            assert document["error"] is None
            assert document["degraded"] is True
            assert document["cancel_reason"] == "deadline"
            spent = document["delta_spent"]["2"]
            assert 0 < spent < SPEC["num_datasets"]

            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["queue"]["deadline_exceeded"] == 1
            # A deadline-truncated threshold is never persisted: a later
            # full-budget query must not inherit the truncation.
            full = submit(server.port, "acme", dataset["dataset_id"])
            complete = finished(server.port, full["query_id"])
            assert complete["degraded"] is False
            assert complete["delta_spent"] == {"2": SPEC["num_datasets"]}

    def test_negative_and_non_integer_deadlines_rejected(self, fimi_text):
        with ReproServer(max_workers=1, max_pending=8) as server:
            dataset = upload(server.port, "acme", fimi_text)
            for bad in (-1, 1.5, True, "fast"):
                status, payload = http_json(
                    server.port,
                    "POST",
                    "/v1/tenants/acme/queries",
                    dict(SPEC, dataset=dataset["dataset_id"], deadline_ms=bad),
                )
                assert status == 400, payload


class TestCancelVerb:
    def test_delete_queued_query_cancels_terminally(self, fimi_text):
        with ReproServer(max_workers=1, max_pending=8) as server:
            dataset = upload(server.port, "acme", fimi_text)
            # One slow query occupies the only worker; the next one queues.
            slow = submit(
                server.port,
                "acme",
                dataset["dataset_id"],
                num_datasets=4000,
                seed=1,
            )
            queued = submit(
                server.port, "acme", dataset["dataset_id"], seed=2
            )
            status, payload = http_json(
                server.port, "DELETE", f"/v1/queries/{queued['query_id']}"
            )
            assert status == 200, payload
            assert payload["cancel"] in ("cancelled", "finished")
            if payload["cancel"] == "cancelled":
                assert payload["status"] == "cancelled"
                # The id keeps resolving after cancellation.
                status, again = http_json(
                    server.port, "GET", f"/v1/queries/{queued['query_id']}"
                )
                assert status == 200 and again["status"] == "cancelled"

            # Cancel the running query: it finishes as an honest
            # strict-prefix degraded result, not an error.
            status, payload = http_json(
                server.port, "DELETE", f"/v1/queries/{slow['query_id']}"
            )
            assert status == 200, payload
            assert payload["cancel"] in ("cancelling", "finished")
            document = finished(server.port, slow["query_id"])
            assert document["status"] == "done"
            assert document["error"] is None
            if payload["cancel"] == "cancelling":
                assert document["cancel_reason"] == "client"
                assert document["delta_spent"]["2"] <= 4000

            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["queue"]["cancelled"] >= 1

    def test_delete_unknown_and_cross_tenant_are_404(self, fimi_text):
        with ReproServer(max_workers=1, max_pending=8) as server:
            dataset = upload(server.port, "acme", fimi_text)
            submitted = submit(server.port, "acme", dataset["dataset_id"])
            status, _ = http_json(
                server.port, "DELETE", "/v1/queries/q-doesnotexist"
            )
            assert status == 404
            # A wrong tenant must not learn the id is real.
            status, _ = http_json(
                server.port,
                "DELETE",
                f"/v1/queries/{submitted['query_id']}",
                headers={"X-Tenant": "rival"},
            )
            assert status == 404
            finished(server.port, submitted["query_id"])


# ---------------------------------------------------------------------------
# Drain and readiness
# ---------------------------------------------------------------------------


class TestDrainAndReadyz:
    def test_drain_flips_readyz_and_refuses_submissions(self, fimi_text):
        with ReproServer(max_workers=1, max_pending=8) as server:
            dataset = upload(server.port, "acme", fimi_text)
            status, ready, _ = http_raw(server.port, "GET", "/v1/readyz")
            assert status == 200 and ready["status"] == "ready"

            report = server.drain(timeout=5.0)
            assert report["drained"] is True

            status, body, headers = http_raw(server.port, "GET", "/v1/readyz")
            assert status == 503
            assert "Retry-After" in headers

            status, body, headers = http_raw(
                server.port,
                "POST",
                "/v1/tenants/acme/queries",
                dict(SPEC, dataset=dataset["dataset_id"]),
            )
            assert status == 503, body
            assert "Retry-After" in headers
            # Reads keep working while draining: a peer (or the operator)
            # can still collect answers.
            status, _ = http_json(server.port, "GET", "/v1/healthz")
            assert status == 200

    def test_drain_completes_inflight_work(self, fimi_text):
        with ReproServer(max_workers=1, max_pending=8) as server:
            dataset = upload(server.port, "acme", fimi_text)
            submitted = submit(server.port, "acme", dataset["dataset_id"])
            report = server.drain(timeout=30.0)
            assert report["drained"] is True
            status, document = http_json(
                server.port, "GET", f"/v1/queries/{submitted['query_id']}"
            )
            assert status == 200
            assert document["status"] == "done"
            assert document["degraded"] is False


# ---------------------------------------------------------------------------
# Crash recovery (staged: a max_workers=0 broker runs nothing, so the
# re-enqueued queue can be inspected exactly as replay left it)
# ---------------------------------------------------------------------------


def _register_and_journal(state, journal, tenant, dataset):
    entry, deduplicated = state.register_dataset(tenant, dataset, dataset.name)
    if not deduplicated:
        journal.dataset_registered(
            tenant,
            dataset_id=entry.dataset_id,
            fingerprint=entry.fingerprint,
            name=dataset.name,
            items=dataset.items,
            transactions=dataset.transactions,
        )
    return entry


class TestStagedRecovery:
    def _dataset(self):
        from io import StringIO

        from repro.data.io import read_fimi

        return read_fimi(StringIO(make_fimi()), name="toy")

    def test_every_journalled_id_resolves_after_replay(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        state_a = ServerState()
        broker_a = QueryBroker(state_a, max_workers=0, journal=journal)
        entry = _register_and_journal(state_a, journal, "acme", self._dataset())
        spec = RunSpec(ks=(2,), epsilon=0.1, num_datasets=4, seed=3)

        queued = broker_a.submit("acme", spec, entry.fingerprint, entry.dataset_id)
        cancelled = broker_a.submit(
            "acme", spec, entry.fingerprint, entry.dataset_id
        )
        broker_a.cancel(cancelled.query_id)
        running = broker_a.submit(
            "acme", spec, entry.fingerprint, entry.dataset_id
        )
        # Simulate the crash arriving mid-run: the journal saw "running",
        # the process never wrote "done".
        journal.job_event(running.query_id, "running", tenant="acme")
        broker_a.close()

        state_b = ServerState()
        broker_b = QueryBroker(state_b, max_workers=0, journal=None)
        report = recover_server(journal, state_b, broker_b)
        try:
            assert report.datasets_restored == 1
            assert report.jobs_terminal == 1  # the cancelled one
            assert report.jobs_reenqueued == 2  # queued + running
            assert report.jobs_recovered == 1  # died mid-running
            assert report.jobs_lost == 0

            # The tenant's original opaque id resolves to the same content.
            restored = state_b.resolve_dataset("acme", entry.dataset_id)
            assert restored.fingerprint == entry.fingerprint

            assert broker_b.get(cancelled.query_id).status == "cancelled"
            assert broker_b.get(queued.query_id).status == "queued"
            recovered_job = broker_b.get(running.query_id)
            assert recovered_job.status == "queued"
            assert recovered_job.recovered is True
            assert broker_b.stats()["recovered"] == 1
        finally:
            broker_b.close()

    def test_unreplayable_job_degrades_to_honest_failure(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        # A submission whose spec/dataset never made it to the journal
        # (e.g. the crash tore the spec line away).
        journal.job_event("q-orphan", "submitted", tenant="acme")
        state = ServerState()
        broker = QueryBroker(state, max_workers=0, journal=None)
        try:
            report = recover_server(journal, state, broker)
            assert report.jobs_lost == 1
            job = broker.get("q-orphan")
            assert job.status == "failed"
            assert "unrecoverable" in job.error
        finally:
            broker.close()

    def test_shed_unrefined_job_reenqueues_its_refinement(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        state_a = ServerState()
        broker_a = QueryBroker(state_a, max_workers=0, journal=journal)
        entry = _register_and_journal(state_a, journal, "acme", self._dataset())
        spec = RunSpec(ks=(2,), epsilon=0.1, num_datasets=64, seed=3)
        job = broker_a.submit("acme", spec, entry.fingerprint, entry.dataset_id)
        # The crash hit after the shed answer was served but before the
        # background refinement ran.
        journal.job_event(job.query_id, "done", tenant="acme", shed=True)
        broker_a.close()

        state_b = ServerState()
        broker_b = QueryBroker(state_b, max_workers=0, journal=None)
        try:
            report = recover_server(journal, state_b, broker_b)
            assert report.refinements_reenqueued == 1
            restored = broker_b.get(job.query_id)
            assert restored.shed is True  # replays the shed answer first
        finally:
            broker_b.close()

    def test_corrupt_dataset_record_aborts_recovery(self, tmp_path):
        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        dataset = self._dataset()
        journal.dataset_registered(
            "acme",
            dataset_id="ds-forged",
            fingerprint="sha256:not-the-real-fingerprint",
            name="toy",
            items=dataset.items,
            transactions=dataset.transactions,
        )
        state = ServerState()
        broker = QueryBroker(state, max_workers=0, journal=None)
        try:
            with pytest.raises(ValueError, match="journal corruption"):
                recover_server(journal, state, broker)
        finally:
            broker.close()


class TestBrokerShutdownHonesty:
    def test_close_reports_and_warns_on_abandoned_work(self, tmp_path, caplog):
        import logging

        journal = QueryJournal(str(tmp_path / "wal.jsonl"))
        state = ServerState()
        broker = QueryBroker(state, max_workers=0, journal=journal)
        entry = _register_and_journal(
            state, journal, "acme", TestStagedRecovery()._dataset()
        )
        spec = RunSpec(ks=(2,), epsilon=0.1, num_datasets=4, seed=3)
        broker.submit("acme", spec, entry.fingerprint, entry.dataset_id)

        with caplog.at_level(logging.WARNING, logger="repro.server"):
            report = broker.close()
        assert report["pending"] == 1
        assert any("abandoned" in record.message for record in caplog.records)
        # Idempotent: a second close re-returns the same report, no re-log.
        assert broker.close() is report

    def test_draining_broker_refuses_submissions(self):
        state = ServerState()
        broker = QueryBroker(state, max_workers=0)
        try:
            broker.drain(timeout=0.1, grace=0.0)
            spec = RunSpec(ks=(2,), epsilon=0.1, num_datasets=4, seed=3)
            with pytest.raises(BrokerDraining):
                broker.submit("acme", spec, "sha-x", "ds-x")
        finally:
            broker.close()

    def test_restore_terminal_never_loses_the_error(self):
        state = ServerState()
        broker = QueryBroker(state, max_workers=0)
        try:
            record = JobRecord(
                query_id="q-dead",
                tenant="acme",
                status="failed",
                error="ValueError: boom",
            )
            job = broker.restore_terminal(record)
            assert job.status == "failed"
            assert job.error == "ValueError: boom"
            assert job.done_event.is_set()
        finally:
            broker.close()


# ---------------------------------------------------------------------------
# Full in-process restart: same journal + same store → bit-identical answers
# ---------------------------------------------------------------------------


class TestServerRestart:
    def test_restarted_server_replays_bit_identically(self, tmp_path, fimi_text):
        journal_path = str(tmp_path / "wal.jsonl")
        store_path = tmp_path / "store"

        with ReproServer(
            ServerState(DirectoryArtifactStore(store_path)),
            max_workers=1,
            max_pending=8,
            journal=journal_path,
        ) as server:
            dataset = upload(server.port, "acme", fimi_text)
            submitted = submit(server.port, "acme", dataset["dataset_id"])
            before = finished(server.port, submitted["query_id"])
            assert before["status"] == "done"

        with ReproServer(
            ServerState(DirectoryArtifactStore(store_path)),
            max_workers=1,
            max_pending=8,
            journal=journal_path,
        ) as server:
            # The id resolves immediately (202-style queued or already done).
            status, _ = http_json(
                server.port, "GET", f"/v1/queries/{submitted['query_id']}"
            )
            assert status == 200
            after = finished(server.port, submitted["query_id"])
            assert after["status"] == "done"
            assert json.dumps(after["result"], sort_keys=True) == json.dumps(
                before["result"], sort_keys=True
            )
            # The re-run hit the artifact store, not the simulator.
            _, statz = http_json(server.port, "GET", "/v1/statz")
            assert statz["engine"]["simulations_run"] == 0
            assert statz["recovery"]["jobs_reenqueued"] == 1
            # The tenant's dataset id survived the restart too.
            resubmit = submit(server.port, "acme", dataset["dataset_id"])
            finished(server.port, resubmit["query_id"])

"""Restart-recovery chaos: SIGKILL a live server, restart, lose nothing.

The acceptance contract of the durability layer: kill ``repro serve``
with queries in every lifecycle state (done, running, queued), restart on
the same ``--journal`` + ``--store``, and

* every query id ever submitted resolves — never a 404, never a 500;
* a query that finished before the crash reproduces its answer
  **bit-identically** (the re-run is an artifact-store cache hit);
* the job that died mid-``running`` is re-enqueued flagged ``recovered``
  and counted in ``/v1/statz``.

Run via ``make chaos`` (alongside ``tests/server/test_chaos.py``).
"""

from __future__ import annotations

import json
import signal

import pytest

from tests.server.conftest import (
    http_json,
    make_fimi,
    spawn_serve,
    wait_serving,
    wait_until,
)

pytestmark = pytest.mark.chaos

SPEC = {
    "ks": [2],
    "epsilon": 0.1,
    "num_datasets": 12,
    "seed": 11,
}


def upload(port, data):
    status, payload = http_json(
        port, "POST", "/v1/tenants/acme/datasets", {"data": data}
    )
    assert status in (200, 201), payload
    return payload


def submit(port, dataset_id, **overrides):
    status, payload = http_json(
        port,
        "POST",
        "/v1/tenants/acme/queries",
        dict(SPEC, dataset=dataset_id, **overrides),
    )
    assert status in (200, 202), payload
    return payload


def get_query(port, query_id):
    status, payload = http_json(port, "GET", f"/v1/queries/{query_id}")
    assert status == 200, payload
    return payload


def wait_done(port, query_id, timeout=120.0):
    def poll():
        document = get_query(port, query_id)
        return document if document["status"] in ("done", "failed") else None

    return wait_until(poll, timeout=timeout)


def wait_terminal(port, query_id, timeout=120.0):
    def poll():
        document = get_query(port, query_id)
        terminal = document["status"] in ("done", "failed", "cancelled")
        return document if terminal else None

    return wait_until(poll, timeout=timeout)


class TestKillAndRestart:
    def test_sigkill_with_jobs_in_every_state_recovers_bit_identically(
        self, tmp_path
    ):
        journal = tmp_path / "wal.jsonl"
        store = tmp_path / "store"
        process, port = spawn_serve(
            tmp_path, "--workers", "1", "--journal", journal, "--store", store
        )
        wait_serving(process, port)
        dataset = upload(port, make_fimi())

        # One query in every lifecycle state at the moment of the kill:
        # finished (its result recorded client-side), running (a heavy
        # budget on the single worker), and queued behind it.
        done = submit(port, dataset["dataset_id"])
        before = wait_done(port, done["query_id"])
        assert before["status"] == "done"

        running = submit(
            port, dataset["dataset_id"], num_datasets=100_000, seed=1
        )
        queued = submit(port, dataset["dataset_id"], seed=2)

        wait_until(
            lambda: get_query(port, running["query_id"])["status"] == "running",
            timeout=30.0,
        )
        process.kill()  # SIGKILL: no drain, no journal flush beyond the WAL
        process.communicate(timeout=30)

        # Restart on the same journal + store: recovery replays the
        # dataset, re-indexes the finished query, re-enqueues the dead ones.
        process, port = spawn_serve(
            tmp_path, "--workers", "1", "--journal", journal, "--store", store
        )
        try:
            wait_serving(process, port)

            # Every id ever submitted resolves immediately — 200, not 404/500.
            for submitted in (done, running, queued):
                get_query(port, submitted["query_id"])

            # The pre-crash answer reproduces bit-identically: the re-run
            # resolved the same artifact key against the same store.
            after = wait_done(port, done["query_id"])
            assert after["status"] == "done"
            assert json.dumps(after["result"], sort_keys=True) == json.dumps(
                before["result"], sort_keys=True
            )

            # The interrupted heavy query was re-enqueued flagged recovered;
            # cancel it so the lane does not wait out its 100k-draw budget.
            document = get_query(port, running["query_id"])
            assert document["recovered"] is True
            status, cancel = http_json(
                port, "DELETE", f"/v1/queries/{running['query_id']}"
            )
            assert status == 200, cancel
            # Either it was still queued (terminal "cancelled") or already
            # running (an honest strict-prefix degraded "done") — never an
            # error, never a lost id.
            resolved = wait_terminal(port, running["query_id"])
            assert resolved["status"] in ("done", "cancelled"), resolved
            assert resolved["error"] is None

            # The queued one simply runs to completion.
            replayed = wait_done(port, queued["query_id"])
            assert replayed["status"] == "done"
            assert replayed["delta_spent"] == {"2": SPEC["num_datasets"]}

            _, statz = http_json(port, "GET", "/v1/statz")
            assert statz["recovery"]["datasets_restored"] == 1
            assert statz["recovery"]["jobs_recovered"] == 1
            assert statz["recovery"]["jobs_reenqueued"] == 3
            assert statz["queue"]["recovered"] == 1
        finally:
            process.send_signal(signal.SIGINT)
            process.communicate(timeout=60)

"""Signal lifecycle of the real ``repro serve`` process.

The operational contract of the CLI entry point (``docs/server.md``,
"Lifecycle"): SIGINT is an interrupt — cancel everything, exit 130;
SIGTERM is a graceful drain — stop admission, finish in-flight queries,
journal the rest, exit 0; a second signal of either kind forces a fast
shutdown.  These only exist across a process boundary, so each test runs
the actual CLI in a subprocess.
"""

from __future__ import annotations

import json
import signal

from repro.engine import DirectoryArtifactStore
from repro.server import ReproServer, ServerState

from tests.server.conftest import (
    http_json,
    spawn_serve,
    wait_serving,
    wait_until,
)

SPEC = {
    "ks": [2],
    "epsilon": 0.1,
    "num_datasets": 12,
    "seed": 11,
}

FIMI = "1 2 3\n1 2\n2 3\n1 3\n1 2 3\n2 3 4\n1 4\n3 4\n"


def upload(port, data=FIMI):
    status, payload = http_json(
        port, "POST", "/v1/tenants/acme/datasets", {"data": data}
    )
    assert status in (200, 201), payload
    return payload


def submit(port, dataset_id, **overrides):
    status, payload = http_json(
        port,
        "POST",
        "/v1/tenants/acme/queries",
        dict(SPEC, dataset=dataset_id, **overrides),
    )
    assert status in (200, 202), payload
    return payload


class TestSigint:
    def test_sigint_interrupts_with_exit_130(self, tmp_path):
        process, port = spawn_serve(tmp_path, "--workers", "1")
        wait_serving(process, port)
        process.send_signal(signal.SIGINT)
        out, err = process.communicate(timeout=30)
        assert process.returncode == 130, (out, err)
        assert "interrupted" in err


class TestSigtermDrain:
    def test_sigterm_drains_cleanly_and_journal_survives(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        store = tmp_path / "store"
        process, port = spawn_serve(
            tmp_path,
            "--workers",
            "1",
            "--journal",
            journal,
            "--store",
            store,
            "--drain-timeout",
            "60",
        )
        wait_serving(process, port)
        dataset = upload(port)
        submitted = submit(port, dataset["dataset_id"])

        # SIGTERM while the query may still be queued or running: the
        # drain must complete it, journal everything, and exit 0.
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 0, (out, err)
        assert "draining" in err
        assert "drained" in err
        assert journal.exists()

        # The drained conversation is still answerable: a fresh server on
        # the same journal + store resolves the query id and serves the
        # full-budget answer (a cache hit if the drain finished the run).
        with ReproServer(
            ServerState(DirectoryArtifactStore(store)),
            max_workers=1,
            max_pending=8,
            journal=str(journal),
        ) as server:
            def done():
                status, payload = http_json(
                    server.port, "GET", f"/v1/queries/{submitted['query_id']}"
                )
                assert status == 200, payload
                return payload if payload["status"] == "done" else None

            document = wait_until(done, timeout=60.0)
            assert document["error"] is None
            assert document["delta_spent"] == {"2": SPEC["num_datasets"]}

    def test_second_signal_forces_fast_shutdown(self, tmp_path):
        process, port = spawn_serve(
            tmp_path,
            "--workers",
            "1",
            "--journal",
            tmp_path / "wal.jsonl",
            "--drain-timeout",
            "120",
        )
        wait_serving(process, port)
        # A deliberately heavy query so a polite drain would take a while.
        dataset = upload(
            port, "\n".join("1 2 3 4 5 6 7 8" for _ in range(50)) + "\n"
        )
        submit(port, dataset["dataset_id"], num_datasets=200_000, seed=1)

        process.send_signal(signal.SIGTERM)

        def draining():
            status, _ = http_json(port, "GET", "/v1/readyz", timeout=2.0)
            return status == 503

        wait_until(draining, timeout=10.0)
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 130, (out, err)
        assert "forced shutdown" in err


class TestCrashLeavesReplayableJournal:
    def test_sigkill_then_inprocess_restart_resolves_query(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        store = tmp_path / "store"
        process, port = spawn_serve(
            tmp_path,
            "--workers",
            "1",
            "--journal",
            journal,
            "--store",
            store,
        )
        wait_serving(process, port)
        dataset = upload(port)
        submitted = submit(port, dataset["dataset_id"])
        # SIGKILL: no handler runs, nothing flushes except what the
        # write-ahead journal already holds.
        process.kill()
        process.communicate(timeout=30)

        with ReproServer(
            ServerState(DirectoryArtifactStore(store)),
            max_workers=1,
            max_pending=8,
            journal=str(journal),
        ) as server:
            status, payload = http_json(
                server.port, "GET", f"/v1/queries/{submitted['query_id']}"
            )
            assert status == 200, payload

            def done():
                _, doc = http_json(
                    server.port, "GET", f"/v1/queries/{submitted['query_id']}"
                )
                return doc if doc["status"] in ("done", "failed") else None

            document = wait_until(done, timeout=60.0)
            assert document["status"] == "done"
            assert document["delta_spent"] == {"2": SPEC["num_datasets"]}

"""Unit tests for Binomial tail probabilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.binomial import (
    binomial_pmf,
    binomial_sf,
    binomial_tail_normal,
    binomial_tail_poisson,
)


class TestBinomialSf:
    def test_matches_hand_computation(self):
        # Pr(Bin(3, 0.5) >= 2) = 3/8 + 1/8 = 0.5
        assert binomial_sf(2, 3, 0.5) == pytest.approx(0.5)

    def test_inclusive_tail(self):
        # Pr(Bin(10, 0.3) >= 0) = 1 and >= 11 is impossible.
        assert binomial_sf(0, 10, 0.3) == 1.0
        assert binomial_sf(11, 10, 0.3) == 0.0

    def test_paper_motivating_example(self):
        # Section 1.2: 1,000,000 transactions, pair probability 1/1,000,000;
        # the probability of support >= 7 is about 0.0001.
        pvalue = binomial_sf(7, 1_000_000, 1e-6)
        assert pvalue == pytest.approx(1e-4, rel=0.2)

    def test_degenerate_probabilities(self):
        assert binomial_sf(1, 10, 0.0) == 0.0
        assert binomial_sf(10, 10, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_sf(1, -1, 0.5)
        with pytest.raises(ValueError):
            binomial_sf(1, 10, 1.5)

    @given(
        trials=st.integers(1, 200),
        threshold=st.integers(0, 200),
        probability=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_is_a_probability_and_monotone(self, trials, threshold, probability):
        value = binomial_sf(threshold, trials, probability)
        assert 0.0 <= value <= 1.0
        assert value >= binomial_sf(threshold + 1, trials, probability) - 1e-12

    @given(trials=st.integers(1, 60), probability=st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_complements_pmf_sum(self, trials, probability):
        threshold = trials // 2
        tail = sum(
            binomial_pmf(value, trials, probability)
            for value in range(threshold, trials + 1)
        )
        assert binomial_sf(threshold, trials, probability) == pytest.approx(
            tail, abs=1e-9
        )


class TestBinomialPmf:
    def test_sums_to_one(self):
        total = sum(binomial_pmf(value, 12, 0.3) for value in range(13))
        assert total == pytest.approx(1.0)

    def test_out_of_range_is_zero(self):
        assert binomial_pmf(-1, 5, 0.5) == 0.0
        assert binomial_pmf(6, 5, 0.5) == 0.0


class TestApproximations:
    def test_poisson_approximation_close_for_small_p(self):
        exact = binomial_sf(5, 10_000, 1e-4)
        approx = binomial_tail_poisson(5, 10_000, 1e-4)
        assert approx == pytest.approx(exact, rel=0.02)

    def test_normal_approximation_close_for_large_np(self):
        exact = binomial_sf(520, 1000, 0.5)
        approx = binomial_tail_normal(520, 1000, 0.5)
        assert approx == pytest.approx(exact, rel=0.1)

    def test_edge_cases(self):
        assert binomial_tail_poisson(0, 10, 0.1) == 1.0
        assert binomial_tail_normal(0, 10, 0.1) == 1.0
        assert binomial_tail_normal(5, 0, 0.1) == 0.0
        assert binomial_tail_normal(3, 10, 0.0) == 0.0


class TestScipyFreeFallback:
    """The pure-math lane must agree with scipy wherever scipy is present.

    The scipy-free CI lane exercises the fallback for real; this class forces
    it on scipy-installed hosts so a fallback regression cannot hide there.
    """

    CASES = [
        (2, 3, 0.5),
        (7, 1_000_000, 1e-6),
        (38, 7920, 0.004),
        (500, 1000, 0.5),
        (999, 1000, 0.99),
        (1, 10, 0.0),
        (10, 10, 1.0),
    ]

    @pytest.fixture()
    def fallback(self, monkeypatch):
        import repro.stats.binomial as binomial_module

        if binomial_module._scipy_stats is None:
            pytest.skip("scipy not installed: the fallback is the only lane")
        reference = {
            "sf": {case: binomial_sf(*case) for case in self.CASES},
            "pmf": {
                case: binomial_pmf(case[0], case[1], case[2]) for case in self.CASES
            },
            "poisson": {case: binomial_tail_poisson(*case) for case in self.CASES},
            "normal": {case: binomial_tail_normal(*case) for case in self.CASES},
        }
        monkeypatch.setattr(binomial_module, "_scipy_stats", None)
        return reference

    def test_sf_matches_scipy(self, fallback):
        for case, expected in fallback["sf"].items():
            assert binomial_sf(*case) == pytest.approx(expected, rel=1e-8, abs=1e-300)

    def test_pmf_matches_scipy(self, fallback):
        for case, expected in fallback["pmf"].items():
            successes, trials, probability = case
            assert binomial_pmf(successes, trials, probability) == pytest.approx(
                expected, rel=1e-8, abs=1e-300
            )

    def test_approximations_match_scipy(self, fallback):
        for case, expected in fallback["poisson"].items():
            assert binomial_tail_poisson(*case) == pytest.approx(
                expected, rel=1e-8, abs=1e-300
            )
        for case, expected in fallback["normal"].items():
            assert binomial_tail_normal(*case) == pytest.approx(
                expected, rel=1e-8, abs=1e-300
            )

"""Unit tests for Chernoff bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.binomial import binomial_sf
from repro.stats.chernoff import (
    chernoff_bound_above,
    chernoff_bound_below,
    poisson_tail_chernoff,
)
from repro.stats.poisson import poisson_upper_tail


class TestChernoffAbove:
    def test_vacuous_below_mean(self):
        assert chernoff_bound_above(10.0, 5.0) == 1.0

    def test_upper_bounds_binomial_tail(self):
        # X ~ Bin(1000, 0.01), mean 10: the bound must dominate the true tail.
        mean = 10.0
        for threshold in (15, 20, 30, 50):
            bound = chernoff_bound_above(mean, threshold)
            true_tail = binomial_sf(threshold, 1000, 0.01)
            assert bound >= true_tail

    def test_paper_disjoint_pairs_example(self):
        # Section 1.2: 300 disjoint pairs each reaching support >= 7 when the
        # expected number of such successes is ~0.0001 * 300; the probability
        # is (much) less than 2^-300.  Our bound on a single Binomial with
        # mean 0.03 reaching 300 is astronomically small.
        bound = chernoff_bound_above(300 * 1e-4, 300)
        assert bound < 2.0**-300

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_bound_above(-1.0, 5.0)

    @given(mean=st.floats(0.01, 50.0), factor=st.floats(1.01, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_bound_is_probability_and_decreasing(self, mean, factor):
        threshold = mean * factor
        bound = chernoff_bound_above(mean, threshold)
        assert 0.0 <= bound <= 1.0
        assert chernoff_bound_above(mean, threshold * 1.5) <= bound + 1e-12


class TestChernoffBelow:
    def test_vacuous_above_mean(self):
        assert chernoff_bound_below(10.0, 12.0) == 1.0

    def test_negative_threshold(self):
        assert chernoff_bound_below(10.0, -1.0) == 0.0

    def test_upper_bounds_binomial_lower_tail(self):
        mean = 50.0  # Bin(1000, 0.05)
        for threshold in (40, 30, 20):
            bound = chernoff_bound_below(mean, threshold)
            true_tail = 1.0 - binomial_sf(threshold + 1, 1000, 0.05)
            assert bound >= true_tail

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_bound_below(-1.0, 0.5)


class TestPoissonChernoff:
    def test_upper_bounds_poisson_tail(self):
        for mean in (0.5, 2.0, 10.0):
            for threshold in (int(mean) + 1, int(mean) + 5, int(mean) + 20):
                assert poisson_tail_chernoff(mean, threshold) >= poisson_upper_tail(
                    threshold, mean
                )

    def test_edge_cases(self):
        assert poisson_tail_chernoff(0.0, 1) == 0.0
        assert poisson_tail_chernoff(5.0, 3) == 1.0
        with pytest.raises(ValueError):
            poisson_tail_chernoff(-1.0, 2)

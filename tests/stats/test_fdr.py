"""Unit tests for empirical FDR / power evaluation."""

from __future__ import annotations

import pytest

from repro.data.generators import PlantedItemset
from repro.stats.fdr import (
    ConfusionCounts,
    evaluate_discoveries,
    is_dependent_under_planting,
    planted_k_subsets,
)


class TestPlantedKSubsets:
    def test_enumerates_subsets(self):
        planted = [PlantedItemset(items=(1, 2, 3), extra_support=5)]
        assert planted_k_subsets(planted, 2) == {(1, 2), (1, 3), (2, 3)}

    def test_skips_groups_smaller_than_k(self):
        planted = [PlantedItemset(items=(1, 2), extra_support=5)]
        assert planted_k_subsets(planted, 3) == set()

    def test_union_over_groups(self):
        planted = [
            PlantedItemset(items=(1, 2), extra_support=5),
            PlantedItemset(items=(3, 4), extra_support=5),
        ]
        assert planted_k_subsets(planted, 2) == {(1, 2), (3, 4)}


class TestEvaluateDiscoveries:
    def test_counts(self):
        planted = [PlantedItemset(items=(1, 2, 3), extra_support=5)]
        counts = evaluate_discoveries([(1, 2), (7, 8)], planted, k=2)
        assert counts.true_positives == 1
        assert counts.false_positives == 1
        assert counts.false_negatives == 2
        assert counts.num_discoveries == 2
        assert counts.false_discovery_proportion == pytest.approx(0.5)
        assert counts.precision == pytest.approx(0.5)
        assert counts.recall == pytest.approx(1 / 3)

    def test_empty_discoveries(self):
        planted = [PlantedItemset(items=(1, 2), extra_support=5)]
        counts = evaluate_discoveries([], planted, k=2)
        assert counts.false_discovery_proportion == 0.0
        assert counts.recall == 0.0

    def test_no_planted_structure(self):
        counts = evaluate_discoveries([(1, 2)], [], k=2)
        assert counts.false_positives == 1
        assert counts.recall == 1.0

    def test_duplicate_and_unordered_discoveries_are_canonicalised(self):
        planted = [PlantedItemset(items=(1, 2, 3), extra_support=5)]
        counts = evaluate_discoveries([(2, 1), (1, 2)], planted, k=2)
        assert counts.true_positives == 1
        assert counts.false_positives == 0

    def test_perfect_recovery(self):
        planted = [PlantedItemset(items=(1, 2, 3), extra_support=5)]
        discoveries = [(1, 2), (1, 3), (2, 3)]
        counts = evaluate_discoveries(discoveries, planted, k=2)
        assert counts == ConfusionCounts(3, 0, 0)
        assert counts.precision == 1.0
        assert counts.recall == 1.0

    def test_partially_planted_discovery_is_a_true_positive(self):
        # {1, 2, 9} contains two members of the planted group, so its items
        # are genuinely dependent even though 9 was never planted.
        planted = [PlantedItemset(items=(1, 2, 3), extra_support=5)]
        counts = evaluate_discoveries([(1, 2, 9)], planted, k=3)
        assert counts.true_positives == 1
        assert counts.false_positives == 0
        # But an itemset touching only one planted item is not dependent.
        assert not is_dependent_under_planting((1, 8, 9), planted)
        assert is_dependent_under_planting((2, 3, 9), planted)

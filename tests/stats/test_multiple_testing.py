"""Unit tests for the multiple-testing corrections (Bonferroni, Holm, BH, BY)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.multiple_testing import (
    benjamini_hochberg,
    benjamini_yekutieli,
    bonferroni,
    harmonic_number,
    holm,
)


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_large_value_uses_asymptotic_form(self):
        # H_n ≈ ln(n) + γ; check the approximation branch is close to the
        # exact sum extrapolated from a smaller exact value.
        big = 20_000_000
        approx = harmonic_number(big)
        assert approx == pytest.approx(np.log(big) + 0.5772156649, rel=1e-6)

    def test_monotone(self):
        values = [harmonic_number(n) for n in range(1, 50)]
        assert all(a < b for a, b in zip(values, values[1:]))


class TestBonferroni:
    def test_basic(self):
        result = bonferroni([0.001, 0.02, 0.9], level=0.05)
        assert result.rejected == (True, False, False)
        assert result.num_rejected == 1
        assert result.method == "bonferroni"

    def test_extra_hypotheses_make_it_stricter(self):
        loose = bonferroni([0.01], level=0.05)
        strict = bonferroni([0.01], level=0.05, num_hypotheses=100)
        assert loose.num_rejected == 1
        assert strict.num_rejected == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bonferroni([0.5], level=1.5)
        with pytest.raises(ValueError):
            bonferroni([1.5], level=0.05)
        with pytest.raises(ValueError):
            bonferroni([0.5, 0.5], level=0.05, num_hypotheses=1)


class TestHolm:
    def test_at_least_as_powerful_as_bonferroni(self):
        pvalues = [0.001, 0.012, 0.03, 0.2]
        bonf = bonferroni(pvalues, 0.05)
        holm_result = holm(pvalues, 0.05)
        assert holm_result.num_rejected >= bonf.num_rejected

    def test_step_down_stops_at_first_failure(self):
        # Sorted p-values are 0.001, 0.03, 0.04 with Holm cutoffs 0.05/3,
        # 0.05/2, 0.05/1.  The second one fails (0.03 > 0.025), so the walk
        # stops after a single rejection even though 0.04 <= 0.05.
        result = holm([0.001, 0.04, 0.03], level=0.05)
        assert result.num_rejected == 1


class TestStepUpProcedures:
    def test_bh_classic_example(self):
        pvalues = [0.01, 0.04, 0.03, 0.005, 0.9]
        result = benjamini_hochberg(pvalues, level=0.05)
        # Sorted: 0.005, 0.01, 0.03, 0.04, 0.9 with cutoffs 0.01, 0.02, 0.03,
        # 0.04, 0.05 -> the largest passing rank is 4.
        assert result.num_rejected == 4
        assert result.rejected[-1] is False

    def test_by_is_more_conservative_than_bh(self):
        pvalues = list(np.linspace(0.001, 0.2, 25))
        bh = benjamini_hochberg(pvalues, level=0.05)
        by = benjamini_yekutieli(pvalues, level=0.05)
        assert by.num_rejected <= bh.num_rejected
        assert set(by.rejected_indices()) <= set(bh.rejected_indices())

    def test_by_matches_theorem5_formula(self):
        # Theorem 5: reject the ℓ smallest p-values where ℓ is the largest i
        # with p_(i) <= i * β / (m * H_m).
        pvalues = [0.00001, 0.0005, 0.002, 0.2]
        m = 10
        beta = 0.05
        result = benjamini_yekutieli(pvalues, beta, num_hypotheses=m)
        h_m = harmonic_number(m)
        expected = 0
        for rank, p in enumerate(sorted(pvalues), start=1):
            if p <= rank * beta / (m * h_m):
                expected = rank
        assert result.num_rejected == expected

    def test_no_rejections(self):
        result = benjamini_yekutieli([0.5, 0.9], level=0.05)
        assert result.num_rejected == 0
        assert result.threshold == 0.0

    def test_empty_input(self):
        result = benjamini_yekutieli([], level=0.05)
        assert result.num_rejected == 0

    def test_rejections_respect_threshold(self):
        pvalues = [0.001, 0.02, 0.2, 0.0001]
        result = benjamini_hochberg(pvalues, 0.05)
        for p, rejected in zip(pvalues, result.rejected):
            assert rejected == (p <= result.threshold)


class TestStepUpProperties:
    @given(
        pvalues=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=40),
        level=st.floats(0.01, 0.2),
    )
    @settings(max_examples=80, deadline=None)
    def test_step_up_invariants(self, pvalues, level):
        for procedure in (benjamini_hochberg, benjamini_yekutieli, bonferroni, holm):
            result = procedure(pvalues, level)
            assert len(result.rejected) == len(pvalues)
            assert result.num_rejected == sum(result.rejected)
            # Rejections are always among the smallest p-values.
            if result.num_rejected:
                rejected_max = max(
                    pvalues[index] for index in result.rejected_indices()
                )
                accepted_min = min(
                    (
                        pvalues[index]
                        for index in range(len(pvalues))
                        if not result.rejected[index]
                    ),
                    default=1.0,
                )
                assert rejected_max <= accepted_min + 1e-12

    @given(
        pvalues=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30),
        level=st.floats(0.01, 0.2),
        extra=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_hypotheses_never_increase_rejections(self, pvalues, level, extra):
        base = benjamini_yekutieli(pvalues, level)
        widened = benjamini_yekutieli(
            pvalues, level, num_hypotheses=len(pvalues) + extra
        )
        assert widened.num_rejected <= base.num_rejected

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_by_controls_fdr_on_null_pvalues(self, seed):
        # Under the global null (uniform p-values) any rejection is a false
        # discovery; BY at level 0.05 should essentially never reject.
        rng = np.random.default_rng(seed)
        pvalues = rng.uniform(size=50).tolist()
        result = benjamini_yekutieli(pvalues, 0.05)
        assert result.num_rejected <= 2

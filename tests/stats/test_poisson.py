"""Unit tests for Poisson distribution helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.poisson import poisson_cdf, poisson_pmf, poisson_sf, poisson_upper_tail


class TestPoisson:
    def test_pmf_at_zero(self):
        assert poisson_pmf(0, 2.0) == pytest.approx(math.exp(-2.0))

    def test_pmf_sums_to_one(self):
        total = sum(poisson_pmf(value, 3.0) for value in range(60))
        assert total == pytest.approx(1.0)

    def test_cdf_plus_sf_is_one(self):
        assert poisson_cdf(4, 2.5) + poisson_sf(4, 2.5) == pytest.approx(1.0)

    def test_upper_tail_is_inclusive(self):
        # Pr(X >= 1) = 1 - Pr(X = 0).
        assert poisson_upper_tail(1, 2.0) == pytest.approx(1.0 - math.exp(-2.0))
        # Pr(X >= 0) = 1.
        assert poisson_upper_tail(0, 2.0) == 1.0

    def test_upper_tail_zero_mean(self):
        assert poisson_upper_tail(1, 0.0) == 0.0
        assert poisson_upper_tail(0, 0.0) == 1.0

    def test_negative_counts(self):
        assert poisson_pmf(-1, 1.0) == 0.0
        assert poisson_cdf(-1, 1.0) == 0.0
        assert poisson_sf(-1, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_pmf(1, -1.0)
        with pytest.raises(ValueError):
            poisson_upper_tail(1, -0.5)

    @given(mean=st.floats(0.0, 50.0), count=st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_tail_is_probability_and_monotone(self, mean, count):
        value = poisson_upper_tail(count, mean)
        assert 0.0 <= value <= 1.0
        assert value >= poisson_upper_tail(count + 1, mean) - 1e-12

    @given(mean=st.floats(0.01, 30.0), count=st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_upper_tail_matches_pmf_relation(self, mean, count):
        # Pr(X >= c) = Pr(X >= c+1) + Pr(X = c).
        lhs = poisson_upper_tail(count, mean)
        rhs = poisson_upper_tail(count + 1, mean) + poisson_pmf(count, mean)
        assert lhs == pytest.approx(rhs, abs=1e-9)


class TestScipyFreeFallback:
    """Force the pure incomplete-gamma lane and pin it against scipy."""

    CASES = [(0, 2.0), (4, 2.5), (1, 0.0), (40, 3.0), (120, 100.0), (3, 1e-4)]

    @pytest.fixture()
    def fallback(self, monkeypatch):
        import repro.stats.poisson as poisson_module

        if poisson_module._scipy_stats is None:
            pytest.skip("scipy not installed: the fallback is the only lane")
        reference = {
            case: (
                poisson_pmf(*case),
                poisson_cdf(*case),
                poisson_sf(*case),
                poisson_upper_tail(*case),
            )
            for case in self.CASES
        }
        monkeypatch.setattr(poisson_module, "_scipy_stats", None)
        return reference

    def test_all_tails_match_scipy(self, fallback):
        for case, (pmf, cdf, sf, upper) in fallback.items():
            count, mean = case
            assert poisson_pmf(count, mean) == pytest.approx(pmf, rel=1e-8, abs=1e-300)
            assert poisson_cdf(count, mean) == pytest.approx(cdf, rel=1e-8, abs=1e-300)
            assert poisson_sf(count, mean) == pytest.approx(sf, rel=1e-8, abs=1e-300)
            assert poisson_upper_tail(count, mean) == pytest.approx(
                upper, rel=1e-8, abs=1e-300
            )

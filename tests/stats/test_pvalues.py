"""Unit tests for per-itemset p-values."""

from __future__ import annotations

import pytest

from repro.data.random_model import RandomDatasetModel
from repro.stats.binomial import binomial_sf
from repro.stats.pvalues import itemset_pvalue, itemset_pvalues


class TestItemsetPvalue:
    def test_matches_binomial_tail(self, tiny_dataset):
        # f_1 = 0.6, f_2 = 0.8 -> f_X = 0.48, t = 5, observed support 3.
        expected = binomial_sf(3, 5, 0.48)
        assert itemset_pvalue(tiny_dataset, (1, 2), 3) == pytest.approx(expected)

    def test_accepts_model_source(self, small_model):
        expected = binomial_sf(10, 200, 0.30 * 0.25)
        assert itemset_pvalue(small_model, (0, 1), 10) == pytest.approx(expected)

    def test_unknown_item_gives_zero_probability(self, tiny_dataset):
        # Null probability 0 -> support >= 1 is impossible under the null.
        assert itemset_pvalue(tiny_dataset, (1, 999), 1) == 0.0
        assert itemset_pvalue(tiny_dataset, (1, 999), 0) == 1.0

    def test_higher_support_gives_smaller_pvalue(self, tiny_dataset):
        p_low = itemset_pvalue(tiny_dataset, (1, 2), 2)
        p_high = itemset_pvalue(tiny_dataset, (1, 2), 4)
        assert p_high < p_low

    def test_rejects_bare_frequency_mapping(self):
        with pytest.raises(TypeError):
            itemset_pvalue({1: 0.5}, (1,), 2)


class TestItemsetPvalues:
    def test_batch_matches_single(self, tiny_dataset):
        supports = {(1, 2): 3, (2, 3): 3, (1, 4): 1}
        batch = itemset_pvalues(tiny_dataset, supports)
        for itemset, support in supports.items():
            assert batch[itemset] == pytest.approx(
                itemset_pvalue(tiny_dataset, itemset, support)
            )

    def test_keys_are_canonical(self, tiny_dataset):
        batch = itemset_pvalues(tiny_dataset, {(2, 1): 3})
        assert (1, 2) in batch

    def test_planted_itemset_has_tiny_pvalue(self, correlated_dataset):
        support = correlated_dataset.support((100, 101, 102))
        pvalue = itemset_pvalue(correlated_dataset, (100, 101, 102), support)
        assert pvalue < 1e-20

    def test_null_itemset_has_unremarkable_pvalue(self, correlated_dataset):
        # A pair of independent background items should not look significant.
        support = correlated_dataset.support((0, 1))
        pvalue = itemset_pvalue(correlated_dataset, (0, 1), support)
        assert pvalue > 1e-4

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_fimi


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "bms1", "--output", "x.dat", "--seed", "3"]
        )
        assert args.command == "generate"
        assert args.dataset == "bms1"
        assert args.seed == 3

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "--input", "x.dat"])
        assert args.k == 2
        assert args.alpha == 0.05
        assert args.procedure == "2"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "nope", "--output", "x.dat"]
            )

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_mine_output_choices(self):
        args = build_parser().parse_args(
            ["mine", "--input", "x.dat", "--output", "json"]
        )
        assert args.output == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--input", "x.dat", "--output", "yaml"]
            )

    def test_report_arguments(self):
        args = build_parser().parse_args(["report", "--input", "r.json"])
        assert args.command == "report"
        assert args.max_print == 20


class TestCommands:
    def test_generate_then_summary_then_mine(self, tmp_path, capsys):
        output = tmp_path / "bms1.dat"
        code = main(
            [
                "generate",
                "--dataset",
                "bms1",
                "--output",
                str(output),
                "--scale",
                "0.01",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        assert output.exists()
        dataset = read_fimi(output)
        assert dataset.num_transactions > 0
        generated = capsys.readouterr().out
        assert "written to" in generated

        assert main(["summary", "--input", str(output)]) == 0
        summary_output = capsys.readouterr().out
        assert "t=" in summary_output

        code = main(
            [
                "mine",
                "--input",
                str(output),
                "--k",
                "2",
                "--delta",
                "10",
                "--seed",
                "1",
                "--procedure",
                "both",
                "--max-print",
                "5",
            ]
        )
        assert code == 0
        mined_output = capsys.readouterr().out
        assert "s_min (Algorithm 1):" in mined_output
        assert "Procedure 2: s* =" in mined_output
        assert "Procedure 1 (Benjamini-Yekutieli)" in mined_output

    def test_experiment_command(self, capsys):
        code = main(["experiment", "--table", "table1", "--preset", "quick"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "retail" in output

    def test_mine_with_store_resumes_across_invocations(self, tmp_path, capsys):
        data = tmp_path / "data.dat"
        data.write_text("1 2\n1 2\n1 2 3\n2 3\n1 3\n" * 8)
        store = tmp_path / "store"
        argv = [
            "mine",
            "--input",
            str(data),
            "--k",
            "2",
            "--delta",
            "8",
            "--store",
            str(store),
            "--output",
            "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(store.glob("*.json"))  # the artifact landed on disk
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert second == first  # resumed run is byte-identical


class TestCrashUX:
    """Operational failures exit with one stderr line, never a traceback."""

    def test_mine_missing_input_exits_cleanly(self, capsys):
        code = main(["mine", "--input", "/no/such/file.dat"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_report_corrupt_json_exits_cleanly(self, tmp_path, capsys):
        corrupt = tmp_path / "result.json"
        corrupt.write_text('{"type": "RunResult", "spec"')
        code = main(["report", "--input", str(corrupt)])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_report_wrong_payload_exits_cleanly(self, tmp_path, capsys):
        wrong = tmp_path / "result.json"
        wrong.write_text('{"type": "SomethingElse"}')
        assert main(["report", "--input", str(wrong)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_mine_store_path_is_a_file_exits_cleanly(self, tmp_path, capsys):
        data = tmp_path / "data.dat"
        data.write_text("1 2\n2 3\n")
        blocker = tmp_path / "store"
        blocker.write_text("not a directory")
        code = main(
            ["mine", "--input", str(data), "--store", str(blocker)]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_keyboard_interrupt_exits_130(self, tmp_path, capsys, monkeypatch):
        data = tmp_path / "data.dat"
        data.write_text("1 2\n2 3\n")

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._run_mine", interrupt)
        code = main(["mine", "--input", str(data)])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestKeepEmptyFlag:
    def test_summary_and_mine_keep_empty_round_trip(self, tmp_path, capsys):
        # A file with a genuinely empty transaction: skipped by default,
        # kept with --keep-empty (the generate -> mine round trip of a
        # sparse synthetic dataset needs the flag to preserve t).
        path = tmp_path / "empties.dat"
        path.write_text("1 2\n\n2 3\n")

        assert main(["summary", "--input", str(path)]) == 0
        assert "t=2" in capsys.readouterr().out
        assert main(["summary", "--input", str(path), "--keep-empty"]) == 0
        assert "t=3" in capsys.readouterr().out

        code = main(
            ["mine", "--input", str(path), "--keep-empty", "--k", "2", "--delta", "5"]
        )
        assert code == 0
        assert "t=3" in capsys.readouterr().out

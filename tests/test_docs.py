"""Executable-documentation checks: the docs cannot rot.

Two layers:

* always (tier-1): every ``python`` code block in the top-level
  ``README.md`` is executed, in order, in one shared namespace under the
  numpy backend — so the quickstart and the null-model snippets keep
  working exactly as printed;
* under ``REPRO_DOCS_CHECK=1`` (set by ``make docs-check``): every script
  in ``examples/`` is additionally run end to end via its ``main()``, and
  every ``python`` block in ``docs/server.md`` is executed against a real
  in-process server.

Documentation files referenced from the README are also checked to exist,
so a rename cannot silently orphan a link.
"""

from __future__ import annotations

import os
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
EXAMPLES_DIR = REPO_ROOT / "examples"
SERVER_DOC = REPO_ROOT / "docs" / "server.md"

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def readme_python_blocks() -> list[str]:
    return _CODE_BLOCK.findall(README.read_text(encoding="utf-8"))


class TestReadme:
    def test_readme_exists_with_quickstart(self):
        text = README.read_text(encoding="utf-8")
        assert "## Quickstart" in text
        assert "REPRO_BACKEND" in text
        assert "--null-model" in text
        assert "python -m pytest -x -q" in text

    def test_readme_links_resolve(self):
        text = README.read_text(encoding="utf-8")
        for relative in re.findall(r"`((?:docs|examples|src|benchmarks)/[\w./]+)`", text):
            assert (REPO_ROOT / relative).exists(), f"README references missing {relative}"
        for name in (
            "docs/architecture.md",
            "docs/benchmarks.md",
            "docs/server.md",
            "ROADMAP.md",
        ):
            assert (REPO_ROOT / name).exists()

    def test_readme_python_blocks_execute(self, monkeypatch):
        """Run every README ``python`` block in order, in one namespace."""
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        blocks = readme_python_blocks()
        assert blocks, "README has no python code blocks"
        namespace: dict = {}
        for index, block in enumerate(blocks):
            try:
                exec(compile(block, f"README.md[block {index}]", "exec"), namespace)
            except Exception as error:  # pragma: no cover - failure reporting
                pytest.fail(f"README block {index} failed: {error!r}\n{block}")


@pytest.mark.skipif(
    os.environ.get("REPRO_DOCS_CHECK") != "1",
    reason="full example execution only under make docs-check (REPRO_DOCS_CHECK=1)",
)
class TestExamplesEndToEnd:
    @pytest.mark.parametrize(
        "script", sorted(EXAMPLES_DIR.glob("*.py")), ids=lambda p: p.name
    )
    def test_example_runs(self, script, monkeypatch, capsys):
        import importlib.util

        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        spec = importlib.util.spec_from_file_location(script.stem, script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        assert capsys.readouterr().out.strip()


@pytest.mark.skipif(
    os.environ.get("REPRO_DOCS_CHECK") != "1",
    reason="server quickstart execution only under make docs-check",
)
class TestServerDocs:
    def test_server_doc_python_blocks_execute(self, monkeypatch, capsys):
        """Run docs/server.md python blocks against a real in-process server."""
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        blocks = _CODE_BLOCK.findall(SERVER_DOC.read_text(encoding="utf-8"))
        assert blocks, "docs/server.md has no python code blocks"
        namespace: dict = {}
        for index, block in enumerate(blocks):
            try:
                exec(
                    compile(block, f"docs/server.md[block {index}]", "exec"),
                    namespace,
                )
            except Exception as error:  # pragma: no cover - failure reporting
                pytest.fail(
                    f"docs/server.md block {index} failed: {error!r}\n{block}"
                )
        assert "s_min(k=2)" in capsys.readouterr().out

    def test_server_doc_documents_the_contract(self):
        text = SERVER_DOC.read_text(encoding="utf-8")
        for needle in (
            "/v1/tenants/{tenant}/datasets",
            "/v1/tenants/{tenant}/queries",
            "/v1/queries/{id}",
            "/v1/healthz",
            "/v1/statz",
            "degraded",
            "strict-prefix",
            "curl",
        ):
            assert needle in text, f"docs/server.md lost {needle!r}"

"""Smoke tests for the example scripts.

The examples are full runs of the methodology and take tens of seconds each,
so the tests here only check that every example compiles, exposes a ``main``
entry point, and builds its workload correctly; the cheapest example is also
executed end to end.
"""

from __future__ import annotations

import importlib.util
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_compiles_and_has_main(self, path):
        py_compile.compile(str(path), doraise=True)
        module = load_module(path)
        assert callable(getattr(module, "main", None))

    def test_quickstart_dataset_contains_planted_structure(self):
        module = load_module(EXAMPLES_DIR / "quickstart.py")
        dataset, planted = module.build_dataset()
        assert dataset.num_transactions == 1000
        for plant in planted:
            assert dataset.support(plant.items) >= plant.extra_support

    def test_planted_pattern_recovery_single_sweep_point(self):
        module = load_module(EXAMPLES_DIR / "planted_pattern_recovery.py")
        planted, threshold, proc1, proc2 = module.run_once(extra_support=120, seed=3)
        assert threshold.s_min >= 1
        assert proc2.found_threshold
        assert proc2.num_significant >= proc1.num_significant * 0.9

"""Smoke tests for the top-level package API."""

from __future__ import annotations

import re

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_version_single_sourced(self):
        """``repro.__version__``, ``repro._version`` and setup.py agree."""
        import pathlib

        from repro._version import __version__ as canonical

        assert repro.__version__ == canonical
        setup_py = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "setup.py"
        )
        assert "_version.py" in setup_py.read_text(encoding="utf-8")
        version_file = (
            pathlib.Path(repro.__file__).resolve().parent / "_version.py"
        )
        match = re.search(
            r'^__version__ = "([^"]+)"',
            version_file.read_text(encoding="utf-8"),
            re.MULTILINE,
        )
        assert match is not None and match.group(1) == canonical

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_key_entry_points_are_callable_or_classes(self):
        assert callable(repro.find_poisson_threshold)
        assert callable(repro.run_procedure1)
        assert callable(repro.run_procedure2)
        assert callable(repro.mine_k_itemsets)
        assert isinstance(repro.BENCHMARK_NAMES, tuple)

    def test_subpackages_importable(self):
        import repro.core
        import repro.data
        import repro.experiments
        import repro.fim
        import repro.stats

        for module in (repro.core, repro.data, repro.fim, repro.stats, repro.experiments):
            for name in module.__all__:
                assert hasattr(module, name)

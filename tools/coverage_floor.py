#!/usr/bin/env python
"""Line-coverage floor for the null-model core (``make coverage``).

Guards the measured line coverage of the swap-walk / null-model surface —
``src/repro/data/`` and ``src/repro/core/null_models.py`` — against the
committed floor: the statistical correctness harness is only worth something
while the code it certifies stays executed by the suite.

Two engines, same verdict:

* with ``pytest-cov`` installed (CI installs it), the check delegates to
  ``pytest --cov ... --cov-fail-under=<floor>`` — the standard tooling;
* without it (hermetic environments), a dependency-free fallback measures
  line coverage itself: executable lines come from the compiled code
  objects' ``co_lines`` tables, executed lines from a ``sys.settrace`` /
  ``threading.settrace`` hook active while ``pytest`` runs in-process.

The two engines agree to within a point or two (the tracer cannot see lines
executed only inside spawned worker *processes*; pytest-cov without
``concurrency=multiprocessing`` configuration misses those too), so the
committed floor keeps a small margin below the measured value.

Usage::

    PYTHONPATH=src python tools/coverage_floor.py            # scoped suites
    PYTHONPATH=src python tools/coverage_floor.py --floor 80 tests
    PYTHONPATH=src python tools/coverage_floor.py --engine trace
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Coverage targets: every module of the data layer, the null models, and
#: the fault-injection machinery (whose recovery semantics the chaos suite
#: certifies — in-process tests keep it tracer-visible).
TARGETS = (
    "src/repro/data",
    "src/repro/core/null_models.py",
    "src/repro/parallel/faults.py",
)

#: The same targets as importable names, for the pytest-cov engine —
#: coverage.py treats a ``--cov=<file>.py`` path as an (unmatchable)
#: package name, so file targets must be passed as modules.
COV_MODULES = ("repro.data", "repro.core.null_models", "repro.parallel.faults")

#: Measured line coverage floor (percent) across the targets.  Measured
#: 94-96% with the builtin tracer (scoped selection and full suite); the
#: margin absorbs engine differences and lines only reachable in worker
#: processes.
DEFAULT_FLOOR = 88.0

#: Default test selection: the suites that exercise the targets (the whole
#: tier-1 suite measures within a point of this, at several times the
#: cost — CI already runs it separately).
DEFAULT_TESTS = (
    "tests/data",
    "tests/core",
    "tests/fim",
    "tests/engine",
    "tests/parallel",
)


def target_files() -> list[Path]:
    files: list[Path] = []
    for target in TARGETS:
        path = REPO_ROOT / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def executable_lines(path: Path) -> set[int]:
    """Line numbers with generated code, from the code objects' line tables."""
    import types

    source = path.read_text(encoding="utf-8")
    lines: set[int] = set()
    stack = [compile(source, str(path), "exec")]
    while stack:
        code = stack.pop()
        for _, _, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


def run_with_pytest_cov(floor: float, tests: list[str]) -> int:
    import pytest

    arguments = [
        "-q",
        "-p",
        "pytest_cov",
        *[f"--cov={module}" for module in COV_MODULES],
        "--cov-report=term",
        f"--cov-fail-under={floor}",
        *tests,
    ]
    return pytest.main(arguments)


def run_with_builtin_tracer(floor: float, tests: list[str]) -> int:
    import pytest

    watched = {str(path.resolve()): set() for path in target_files()}

    def local_trace(frame, event, arg):
        if event == "line":
            watched[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename in watched:
            return local_trace
        return None

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(["-q", *tests])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    if exit_code != 0:
        print(f"coverage_floor: test run failed (exit {exit_code})")
        return int(exit_code)

    total_executable = 0
    total_hit = 0
    print()
    print(f"{'file':<48} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path in target_files():
        lines = executable_lines(path)
        hit = watched[str(path.resolve())] & lines
        total_executable += len(lines)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(lines) if lines else 100.0
        relative = path.relative_to(REPO_ROOT)
        print(f"{str(relative):<48} {len(lines):>6} {len(hit):>6} {percent:>6.1f}%")
    overall = 100.0 * total_hit / total_executable if total_executable else 100.0
    print(f"{'TOTAL':<48} {total_executable:>6} {total_hit:>6} {overall:>6.1f}%")
    if overall < floor:
        print(f"coverage_floor: FAIL — {overall:.1f}% is below the floor {floor}%")
        return 1
    print(f"coverage_floor: OK — {overall:.1f}% >= floor {floor}%")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    parser.add_argument(
        "--engine",
        choices=["auto", "pytest-cov", "trace"],
        default="auto",
        help="auto uses pytest-cov when installed, else the builtin tracer",
    )
    parser.add_argument(
        "tests", nargs="*", default=list(DEFAULT_TESTS), help="pytest selection"
    )
    args = parser.parse_args(argv)

    os.chdir(REPO_ROOT)
    engine = args.engine
    if engine == "auto":
        try:
            import pytest_cov  # noqa: F401

            engine = "pytest-cov"
        except ImportError:
            engine = "trace"
    print(f"coverage_floor: engine={engine}, floor={args.floor}%")
    if engine == "pytest-cov":
        return run_with_pytest_cov(args.floor, args.tests)
    return run_with_builtin_tracer(args.floor, args.tests)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
